package sim

import (
	"fdp/internal/graph"
	"fdp/internal/ref"
)

// PG returns the current process graph: one node per non-gone process, an
// explicit edge (a,b) for every reference of b stored in a's variables, and
// an implicit edge (a,b) for every reference of b carried by a message in
// a.Ch. Gone processes are removed from PG together with their incident
// edges, so edges to gone processes are omitted.
//
// The graph is maintained incrementally (see pg.go), so this is O(1) after
// the first call. The returned graph is a live read-only view: callers must
// not mutate it and must Clone it to retain a snapshot across world
// mutations.
func (w *World) PG() *graph.Graph {
	return w.pgView()
}

// RebuildPG constructs the process graph from scratch, ignoring the
// incrementally maintained one. It is the reference implementation the
// differential tests compare against, and what callers should use when they
// intend to mutate the result.
func (w *World) RebuildPG() *graph.Graph {
	g := graph.New()
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		g.AddNode(p.id)
	}
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		for _, r := range p.proto.Refs() {
			if w.isLiveTarget(r) {
				g.AddEdge(p.id, r, graph.Explicit)
			}
		}
		for _, m := range p.ch {
			for _, ri := range m.Refs {
				if w.isLiveTarget(ri.Ref) {
					g.AddEdge(p.id, ri.Ref, graph.Implicit)
				}
			}
		}
	}
	return g
}

func (w *World) isLiveTarget(r ref.Ref) bool {
	if r.IsNil() {
		return false
	}
	p := w.byRef[r]
	return p != nil && p.life != Gone
}

// Hibernating returns the set of hibernating processes: p is hibernating if
// p is asleep, p.Ch is empty, and all processes q with a directed path to p
// in PG are also asleep with empty channels. By the claim of Foreback et
// al. quoted in Section 1.1, a hibernating process is permanently asleep
// under any copy-store-send protocol.
func (w *World) Hibernating() ref.Set {
	pg := w.pgView()
	if w.hibCache != nil && w.hibGen == w.gen {
		return w.hibCache
	}
	out := ref.NewSet()
	// Only asleep processes can hibernate: with none, skip the sweep. This
	// is the steady state of every FDP run, where sleep is never used.
	if w.asleep > 0 {
		// S: the "active" processes — awake, or asleep with a nonempty
		// channel.
		var active []ref.Ref
		for _, p := range w.procs {
			if p == nil || p.life == Gone {
				continue
			}
			if p.life == Awake || len(p.ch) > 0 {
				active = append(active, p.id)
			}
		}
		tainted := pg.ForwardReachAll(active)
		for _, p := range w.procs {
			if p == nil || p.life != Asleep || len(p.ch) > 0 {
				continue
			}
			if !tainted.Has(p.id) {
				out.Add(p.id)
			}
		}
	}
	w.hibCache, w.hibGen = out, w.gen
	return out
}

// Relevant returns the set of relevant processes: neither gone nor
// hibernating (Section 1.2). Cached per generation; the returned set is a
// read-only view.
func (w *World) Relevant() ref.Set {
	w.pgView()
	if w.relCache != nil && w.relGen == w.gen {
		return w.relCache
	}
	hib := w.Hibernating()
	out := ref.NewSet()
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if !hib.Has(p.id) {
			out.Add(p.id)
		}
	}
	w.relCache, w.relGen = out, w.gen
	return out
}

// RelevantPG returns PG restricted to relevant processes — the graph oracles
// are defined over. Cached per generation; when nothing hibernates (every
// FDP state) it is PG itself. Like PG, the result is a read-only view.
func (w *World) RelevantPG() *graph.Graph {
	pg := w.pgView()
	if w.relPGCache != nil && w.relPGGen == w.gen {
		return w.relPGCache
	}
	var out *graph.Graph
	if w.Hibernating().Len() == 0 {
		// Every non-gone process is relevant and PG has exactly the
		// non-gone processes as nodes: the induced subgraph is PG.
		out = pg
	} else {
		out = pg.InducedSubgraph(w.Relevant())
	}
	w.relPGCache, w.relPGGen = out, w.gen
	return out
}

// RelevantDegree returns the number of relevant processes u has edges with
// (in either direction, any kind) in the relevant process graph, plus
// whether u itself is relevant — the quantity the SINGLE oracle decides on.
// O(1) when nothing hibernates, O(deg(u)) otherwise, with no allocation.
func (w *World) RelevantDegree(u ref.Ref) (int, bool) {
	pg := w.pgView()
	hib := w.Hibernating()
	if hib.Len() == 0 {
		if !pg.HasNode(u) {
			return 0, false
		}
		return pg.Degree(u), true
	}
	if !pg.HasNode(u) || hib.Has(u) {
		return 0, false
	}
	return pg.UndirectedDegreeIn(u, w.Relevant()), true
}

// Variant selects the problem being solved: FDP (exit available) or FSP
// (sleep available).
type Variant uint8

const (
	// FDP is the Finite Departure Problem: leaving processes must end gone.
	FDP Variant = iota
	// FSP is the Finite Sleep Problem: leaving processes must end
	// hibernating.
	FSP
)

// String names the variant.
func (v Variant) String() string {
	if v == FDP {
		return "FDP"
	}
	return "FSP"
}

// Legitimate reports whether the current state is legitimate per Section
// 1.2: (i) every staying process is awake, (ii) every leaving process is
// gone (FDP) or hibernating (FSP), and (iii) for each weakly connected
// component of the initial process graph, the staying processes of that
// component still form a weakly connected component. SealInitialState must
// have been called.
func (w *World) Legitimate(v Variant) bool {
	var hib ref.Set
	for _, p := range w.procs {
		if p == nil {
			continue
		}
		switch p.mode {
		case Staying:
			if p.life != Awake {
				return false
			}
		case Leaving:
			switch v {
			case FDP:
				if p.life != Gone {
					return false
				}
			case FSP:
				if p.life == Gone {
					return false
				}
				if hib == nil {
					hib = w.Hibernating()
				}
				if !hib.Has(p.id) {
					return false
				}
			}
		}
	}
	return w.StayingComponentsPreserved()
}

// StayingComponentsPreserved checks legitimacy condition (iii): per initial
// component, the staying processes are still weakly connected in the current
// PG (paths may only use staying processes, since in a legitimate state all
// other processes are excluded from the overlay).
func (w *World) StayingComponentsPreserved() bool {
	staying := ref.NewSet()
	for _, p := range w.procs {
		if p != nil && p.mode == Staying {
			staying.Add(p.id)
		}
	}
	pg := w.PG().InducedSubgraph(staying)
	for _, comp := range w.initialComponents {
		var members []ref.Ref
		for _, r := range comp {
			if staying.Has(r) {
				members = append(members, r)
			}
		}
		if len(members) < 2 {
			continue
		}
		reach := pg.UndirectedReach(members[0])
		for _, m := range members[1:] {
			if !reach.Has(m) {
				return false
			}
		}
	}
	return true
}

// RelevantComponentsIntact checks the Lemma 2 safety invariant during a run:
// relevant processes that started in the same initial component are still
// weakly connected in the subgraph of PG induced by relevant processes. This
// is strictly stronger than condition (iii) and must hold in *every* state
// of a computation of a safe protocol.
func (w *World) RelevantComponentsIntact() bool {
	relevant := w.Relevant()
	pg := w.RelevantPG()
	for _, comp := range w.initialComponents {
		var members []ref.Ref
		for _, r := range comp {
			if relevant.Has(r) {
				members = append(members, r)
			}
		}
		if len(members) < 2 {
			continue
		}
		reach := pg.UndirectedReach(members[0])
		for _, m := range members[1:] {
			if !reach.Has(m) {
				return false
			}
		}
	}
	return true
}

// AwakeCount returns the number of awake processes. O(1): the counter is
// maintained on every lifecycle transition.
func (w *World) AwakeCount() int { return w.awake }

// GoneCount returns the number of gone processes.
func (w *World) GoneCount() int {
	n := 0
	for _, p := range w.procs {
		if p != nil && p.life == Gone {
			n++
		}
	}
	return n
}

// LeavingRemaining returns the number of leaving processes not yet gone.
func (w *World) LeavingRemaining() int {
	n := 0
	for _, p := range w.procs {
		if p != nil && p.mode == Leaving && p.life != Gone {
			n++
		}
	}
	return n
}
