package sim

import (
	"strings"
	"testing"

	"fdp/internal/ref"
)

func TestRecorderRingBuffer(t *testing.T) {
	r := NewRecorder(3)
	space := ref.NewSpace()
	p := space.New()
	for i := 0; i < 5; i++ {
		r.Record(Event{Step: i, Kind: EvSend, Proc: p})
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Step != 2 || evs[2].Step != 4 {
		t.Fatalf("ring order wrong: %v", evs)
	}
}

func TestRecorderFilter(t *testing.T) {
	r := NewRecorder(10).Only(EvExit)
	p := ref.NewSpace().New()
	r.Record(Event{Kind: EvSend, Proc: p})
	r.Record(Event{Kind: EvExit, Proc: p})
	if r.Total() != 1 || len(r.Events()) != 1 || r.Events()[0].Kind != EvExit {
		t.Fatal("filter broken")
	}
}

// Regression: Only() with zero kinds used to install an empty non-nil
// filter map, silently dropping every event. It must mean "record
// everything" — both on a fresh recorder and as a way to clear a filter.
func TestRecorderOnlyZeroKindsRecordsEverything(t *testing.T) {
	p := ref.NewSpace().New()
	r := NewRecorder(10).Only()
	r.Record(Event{Kind: EvSend, Proc: p})
	r.Record(Event{Kind: EvExit, Proc: p})
	if r.Total() != 2 {
		t.Fatalf("zero-kind Only dropped events: Total = %d, want 2", r.Total())
	}
	// Clearing an existing filter.
	r2 := NewRecorder(10).Only(EvExit)
	r2.Record(Event{Kind: EvSend, Proc: p})
	r2.Only()
	r2.Record(Event{Kind: EvSend, Proc: p})
	if r2.Total() != 1 {
		t.Fatalf("Only() did not clear the filter: Total = %d, want 1", r2.Total())
	}
}

// Regression: Attach used to overwrite the world's single event hook, so
// the second of two attached consumers silently starved the first. With the
// hook fan-out every attached recorder sees every event.
func TestRecorderAttachTwoConsumers(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa := newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Staying, newFixture())

	all := NewRecorder(100)
	all.Attach(w)
	exitsOnly := NewRecorder(100).Only(EvExit)
	exitsOnly.Attach(w)
	var hooked int
	w.AddEventHook(func(Event) { hooked++ })

	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Send(b, NewMessage("x")) }
	w.Execute(Action{Proc: a, IsTimeout: true})
	w.Execute(Action{Proc: b, MsgIndex: 0})

	if all.Total() == 0 {
		t.Fatal("first recorder starved after second Attach")
	}
	if uint64(hooked) != all.Total() {
		t.Fatalf("plain hook saw %d events, recorder saw %d", hooked, all.Total())
	}
	if exitsOnly.Total() != 0 {
		t.Fatal("filtered recorder recorded non-exit events")
	}
	// SetEventHook keeps its replace-all contract: after it, previous
	// consumers are gone by request, not by accident.
	w.SetEventHook(nil)
	w.Execute(Action{Proc: a, IsTimeout: true})
	if uint64(hooked) != all.Total() {
		t.Fatal("SetEventHook(nil) did not clear the hook list symmetrically")
	}
}

func TestRecorderAttachAndDump(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa, fb := newFixture(), newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Staying, fb)
	rec := NewRecorder(100)
	rec.Attach(w)
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Send(b, NewMessage("hello")) }
	w.Execute(Action{Proc: a, IsTimeout: true})
	w.Execute(Action{Proc: b, MsgIndex: 0})
	dump := rec.Dump()
	if !strings.Contains(dump, "timeout") || !strings.Contains(dump, "label=hello") {
		t.Fatalf("dump incomplete:\n%s", dump)
	}
	counts := rec.CountByKind()
	if counts[EvTimeout] != 1 || counts[EvSend] != 1 || counts[EvDeliver] != 1 {
		t.Fatalf("counts wrong: %v", counts)
	}
}

func TestForceAsleep(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Leaving, newFixture())
	w.ForceAsleep(a)
	if w.LifeOf(a) != Asleep {
		t.Fatal("ForceAsleep must set the asleep state")
	}
	for _, act := range w.EnabledActions() {
		if act.Proc == a && act.IsTimeout {
			t.Fatal("forced-asleep process must have no enabled timeout")
		}
	}
}

// undeliverableProto records bounce notifications.
type undeliverableProto struct {
	fixtureProto
	bounced []Message
}

func (u *undeliverableProto) Undeliverable(ctx Context, to ref.Ref, msg Message) {
	u.bounced = append(u.bounced, msg)
}

func TestUndeliverableHook(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	ua := &undeliverableProto{}
	ua.fixtureProto = *newFixture()
	fb := newFixture()
	fb.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Exit() }
	w.AddProcess(a, Staying, ua)
	w.AddProcess(b, Leaving, fb)
	w.Execute(Action{Proc: b, IsTimeout: true}) // b exits
	ua.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Send(b, NewMessage("lost")) }
	w.Execute(Action{Proc: a, IsTimeout: true})
	if len(ua.bounced) != 1 || ua.bounced[0].Label != "lost" {
		t.Fatalf("undeliverable hook not invoked: %v", ua.bounced)
	}
	if w.Stats().Dropped != 1 {
		t.Fatal("drop not counted")
	}
}

func TestUndeliverableNotCalledForDeliverable(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	ua := &undeliverableProto{}
	ua.fixtureProto = *newFixture()
	w.AddProcess(a, Staying, ua)
	w.AddProcess(b, Staying, newFixture())
	ua.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Send(b, NewMessage("fine")) }
	w.Execute(Action{Proc: a, IsTimeout: true})
	if len(ua.bounced) != 0 {
		t.Fatal("bounce on successful delivery")
	}
}

func TestMSCRendering(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa, fb := newFixture(), newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Staying, fb)
	rec := NewRecorder(100)
	rec.Attach(w)
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Send(b, NewMessage("hello")) }
	w.Execute(Action{Proc: a, IsTimeout: true})
	w.Execute(Action{Proc: b, MsgIndex: 0})
	msc := MSC(rec.Events(), []ref.Ref{a, b})
	if !strings.Contains(msc, "send:hello") {
		t.Fatalf("send missing:\n%s", msc)
	}
	if !strings.Contains(msc, "recv:hello") {
		t.Fatalf("recv missing:\n%s", msc)
	}
	if !strings.Contains(msc, "timeout") {
		t.Fatalf("timeout missing:\n%s", msc)
	}
	// Header has one column per process.
	first := strings.SplitN(msc, "\n", 2)[0]
	if !strings.Contains(first, a.String()) || !strings.Contains(first, b.String()) {
		t.Fatalf("header wrong: %q", first)
	}
}
