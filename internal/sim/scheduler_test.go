package sim

import (
	"testing"

	"fdp/internal/ref"
)

// chatterProto sends one message to a fixed peer on every timeout and
// records what it receives — a stress fixture that keeps channels busy.
type chatterProto struct {
	peer     ref.Ref
	received int
	sends    int
	maxSends int
}

func (c *chatterProto) Timeout(ctx Context) {
	if c.sends < c.maxSends {
		c.sends++
		ctx.Send(c.peer, NewMessage("chat", RefInfo{Ref: ctx.Self(), Mode: Staying}))
	}
}

func (c *chatterProto) Deliver(ctx Context, m Message) { c.received++ }

func (c *chatterProto) Refs() []ref.Ref { return []ref.Ref{c.peer} }

func buildChatterWorld(n, sends int) (*World, []*chatterProto) {
	space := ref.NewSpace()
	nodes := space.NewN(n)
	w := NewWorld(nil)
	protos := make([]*chatterProto, n)
	for i, r := range nodes {
		protos[i] = &chatterProto{peer: nodes[(i+1)%n], maxSends: sends}
		w.AddProcess(r, Staying, protos[i])
	}
	w.SealInitialState()
	return w, protos
}

// runScheduler drives the world for exactly maxSteps steps or until
// quiescent, whichever comes first.
func runScheduler(w *World, s Scheduler, maxSteps int) {
	for w.Steps() < maxSteps {
		a, ok := s.Next(w)
		if !ok {
			return
		}
		w.Execute(a)
	}
}

func TestSchedulersDeliverEverything(t *testing.T) {
	schedulers := []func() Scheduler{
		func() Scheduler { return NewRandomScheduler(1, 64) },
		func() Scheduler { return NewRoundScheduler() },
		func() Scheduler { return NewAdversarialScheduler(1, 64) },
		func() Scheduler { return NewFIFOScheduler() },
	}
	for _, mk := range schedulers {
		s := mk()
		w, protos := buildChatterWorld(5, 10)
		runScheduler(w, s, 100000)
		total := 0
		for _, p := range protos {
			total += p.received
		}
		if total != 5*10 {
			t.Errorf("%s: delivered %d of %d messages", s.Name(), total, 50)
		}
		if w.Stats().TotalInQueue != 0 {
			t.Errorf("%s: %d messages stuck in queues", s.Name(), w.Stats().TotalInQueue)
		}
	}
}

func TestRandomSchedulerDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) []int {
		w, protos := buildChatterWorld(4, 5)
		runScheduler(w, NewRandomScheduler(seed, 64), 2000)
		out := make([]int, len(protos))
		for i, p := range protos {
			out[i] = p.received
		}
		return out
	}
	a1, a2 := run(7), run(7)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed must give identical runs")
		}
	}
}

func TestRandomSchedulerAgingDeliversOldMessages(t *testing.T) {
	// One process floods itself; a second process has one old message. The
	// aging bound must force its delivery within bound steps.
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	flood := &chatterProto{peer: a, maxSends: 1 << 30}
	quiet := &chatterProto{peer: b, maxSends: 0}
	w.AddProcess(a, Staying, flood)
	w.AddProcess(b, Staying, quiet)
	w.Enqueue(b, NewMessage("old"))
	s := NewRandomScheduler(3, 50)
	for i := 0; i < 500 && quiet.received == 0; i++ {
		act, ok := s.Next(w)
		if !ok {
			break
		}
		w.Execute(act)
	}
	if quiet.received == 0 {
		t.Fatal("aging bound failed to force delivery of an old message")
	}
}

func TestRoundSchedulerCountsRounds(t *testing.T) {
	w, _ := buildChatterWorld(3, 4)
	s := NewRoundScheduler()
	runScheduler(w, s, 100000)
	if s.Rounds() == 0 {
		t.Fatal("rounds not counted")
	}
	// Each round runs each process's timeout once: 3 timeouts per round.
	// Sends stop after 4 per process, so the system quiesces... except
	// timeouts are always enabled for awake processes; the driver stops
	// when all messages are consumed and maxSends reached only via step
	// bound. Just sanity-check rounds grew with steps.
	if s.Rounds() > w.Steps() {
		t.Fatal("more rounds than steps is impossible")
	}
}

func TestRoundSchedulerDefersIntraRoundMessages(t *testing.T) {
	// A message sent during a round must not be delivered in that round.
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	pa := &chatterProto{peer: b, maxSends: 1}
	pb := &chatterProto{peer: a, maxSends: 0}
	w.AddProcess(a, Staying, pa)
	w.AddProcess(b, Staying, pb)
	w.SealInitialState()
	s := NewRoundScheduler()
	// Round 1: a's timeout sends to b; b's timeout does nothing. The
	// delivery happens in round 2.
	for i := 0; i < 2; i++ { // two timeout actions of round 1
		act, _ := s.Next(w)
		if !act.IsTimeout {
			t.Fatalf("round 1 action %d should be a timeout (nothing queued at round start)", i)
		}
		w.Execute(act)
	}
	if pb.received != 0 {
		t.Fatal("message delivered in its sending round")
	}
	// Round 2 starts: the delivery must come before b's timeout.
	for pb.received == 0 {
		act, ok := s.Next(w)
		if !ok {
			t.Fatal("scheduler gave up")
		}
		w.Execute(act)
	}
	if s.Rounds() != 2 {
		t.Fatalf("delivery should happen in round 2, got round %d", s.Rounds())
	}
}

func TestAdversarialSchedulerIsFair(t *testing.T) {
	// Even the adversarial scheduler must eventually deliver the oldest
	// message under a constant flood.
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	flood := &chatterProto{peer: b, maxSends: 1 << 30}
	sink := &chatterProto{peer: a, maxSends: 0}
	w.AddProcess(a, Staying, flood)
	w.AddProcess(b, Staying, sink)
	w.Enqueue(b, NewMessage("victim"))
	firstSeq := w.ChannelSnapshot(b)[0].Seq()
	s := NewAdversarialScheduler(11, 40)
	victimDelivered := false
	for i := 0; i < 2000 && !victimDelivered; i++ {
		act, ok := s.Next(w)
		if !ok {
			break
		}
		if !act.IsTimeout && act.MsgSeq == firstSeq {
			victimDelivered = true
		}
		w.Execute(act)
	}
	if !victimDelivered {
		t.Fatal("adversarial scheduler starved a message past its fairness bound")
	}
}

func TestFIFOSchedulerDeliversInOrder(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	p := &chatterProto{peer: a, maxSends: 0}
	w.AddProcess(a, Staying, p)
	w.Enqueue(a, NewMessage("first"))
	w.Enqueue(a, NewMessage("second"))
	s := NewFIFOScheduler()
	var order []uint64
	for len(order) < 2 {
		act, ok := s.Next(w)
		if !ok {
			t.Fatal("no action")
		}
		if !act.IsTimeout {
			order = append(order, act.MsgSeq)
		}
		w.Execute(act)
	}
	if order[0] >= order[1] {
		t.Fatalf("FIFO violated: %v", order)
	}
}

func TestSchedulersTimeoutFairness(t *testing.T) {
	// Every awake process's timeout must run repeatedly under every
	// scheduler, even with message pressure.
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewRandomScheduler(5, 32) },
		func() Scheduler { return NewAdversarialScheduler(5, 32) },
		func() Scheduler { return NewFIFOScheduler() },
		func() Scheduler { return NewRoundScheduler() },
	} {
		s := mk()
		w, protos := buildChatterWorld(4, 1<<30) // endless chatter
		runScheduler(w, s, 5000)
		for i, p := range protos {
			if p.sends < 2 {
				t.Errorf("%s: process %d timeout ran %d times in 5000 steps", s.Name(), i, p.sends)
			}
		}
	}
}

// floodProto sends fanout messages to peer on every timeout, driving the
// global sequence counter several times faster than the step counter — the
// regime in which aging messages by seq instead of enqueue step starves them.
type floodProto struct {
	peer   ref.Ref
	fanout int
}

func (f *floodProto) Timeout(ctx Context) {
	for i := 0; i < f.fanout; i++ {
		ctx.Send(f.peer, NewMessage("flood"))
	}
}

func (f *floodProto) Deliver(Context, Message) {}

func (f *floodProto) Refs() []ref.Ref { return []ref.Ref{f.peer} }

func TestSweepAgesMessagesByEnqueueStep(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, &floodProto{peer: a, fanout: 4})
	w.AddProcess(b, Staying, &chatterProto{peer: a, maxSends: 0})
	// Race the sequence counter ahead of the step counter: 4 sends per step.
	for i := 0; i < 200; i++ {
		w.Execute(Action{Proc: a, IsTimeout: true})
	}
	w.Enqueue(b, NewMessage("victim"))
	victimSeq := w.ChannelSnapshot(b)[0].Seq()
	enq := w.Steps()
	s := NewRandomScheduler(1, 50)
	for i := 0; i < s.AgingBound+10; i++ {
		w.Execute(Action{Proc: a, IsTimeout: true})
	}
	// The victim is now older than the bound in steps, but its sequence
	// number is far beyond the step counter, so a seq-based comparison would
	// never consider it overdue.
	if victimSeq <= uint64(w.Steps()) {
		t.Fatalf("fixture broken: seq %d not ahead of steps %d", victimSeq, w.Steps())
	}
	s.sweep(w)
	for _, act := range s.backlog {
		if !act.IsTimeout && act.MsgSeq == victimSeq {
			return
		}
	}
	t.Fatalf("sweep missed a message enqueued %d steps ago (bound %d)", w.Steps()-enq, s.AgingBound)
}

func TestAdversarialAgingUnderFastSequenceGrowth(t *testing.T) {
	// The test enqueues three fresh messages per scheduler step, so seq runs
	// at ~3x the step counter. A seq-aged adversarial scheduler never sees
	// the victim as overdue (its seq stays ahead of the step counter forever)
	// and LIFO preference starves it; enqueue-step aging must deliver it
	// within the fairness bound.
	space := ref.NewSpace()
	v, c := space.New(), space.New() // v first: its overdue work is scanned first
	w := NewWorld(nil)
	w.AddProcess(v, Staying, &chatterProto{peer: c, maxSends: 0})
	w.AddProcess(c, Staying, &chatterProto{peer: v, maxSends: 0})
	s := NewAdversarialScheduler(3, 40)
	feed := func() {
		for i := 0; i < 3; i++ {
			w.Enqueue(c, NewMessage("noise"))
		}
	}
	for i := 0; i < 600; i++ {
		feed()
		act, ok := s.Next(w)
		if !ok {
			t.Fatal("no enabled action under constant feed")
		}
		w.Execute(act)
	}
	w.Enqueue(v, NewMessage("victim"))
	victimSeq := w.ChannelSnapshot(v)[0].Seq()
	if victimSeq <= uint64(w.Steps()) {
		t.Fatalf("fixture broken: seq %d not ahead of steps %d", victimSeq, w.Steps())
	}
	start := w.Steps()
	for i := 0; i < 5*s.Bound; i++ {
		feed()
		act, ok := s.Next(w)
		if !ok {
			t.Fatal("no enabled action under constant feed")
		}
		if !act.IsTimeout && act.MsgSeq == victimSeq {
			if age := w.Steps() - start; age > 3*s.Bound {
				t.Fatalf("victim delivered only after %d steps (bound %d)", age, s.Bound)
			}
			return
		}
		w.Execute(act)
	}
	t.Fatalf("adversarial scheduler starved a message for %d steps (bound %d)", w.Steps()-start, s.Bound)
}

func TestSchedulerNextDoesNotAllocate(t *testing.T) {
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewAdversarialScheduler(5, 64) },
		func() Scheduler { return NewFIFOScheduler() },
	} {
		s := mk()
		w, _ := buildChatterWorld(8, 1<<30)
		for i := 0; i < 50; i++ { // warm up channels and scratch buffers
			act, ok := s.Next(w)
			if !ok {
				t.Fatal("no action")
			}
			w.Execute(act)
		}
		avg := testing.AllocsPerRun(100, func() {
			if _, ok := s.Next(w); !ok {
				t.Fatal("no action")
			}
		})
		if avg >= 1 {
			t.Errorf("%s: Next allocates %.1f times per pick", s.Name(), avg)
		}
	}
}
