package sim

import (
	"testing"

	"fdp/internal/ref"
)

func TestReplayReproducesRun(t *testing.T) {
	// Record a short run on one world, replay it on a clone, and compare
	// final fingerprints.
	build := func() *World {
		space := ref.NewSpace()
		a, b := space.New(), space.New()
		w := NewWorld(nil)
		pa, pb := newFixture(), newFixture()
		pa.onTimeout = func(ctx Context, f *fixtureProto) {
			ctx.Send(b, NewMessage("ping", RefInfo{Ref: a, Mode: Staying}))
		}
		pb.onTimeout = func(ctx Context, f *fixtureProto) {
			ctx.Send(a, NewMessage("pong", RefInfo{Ref: b, Mode: Staying}))
		}
		w.AddProcess(a, Staying, pa)
		w.AddProcess(b, Staying, pb)
		w.SealInitialState()
		return w
	}
	// fixtureProto is not cloneable, so build two identical worlds instead
	// of cloning (reference spaces mint identical refs in order).
	w1, w2 := build(), build()
	sched := NewRandomScheduler(5, 64)
	var recorded []Action
	for i := 0; i < 40; i++ {
		a, ok := sched.Next(w1)
		if !ok {
			break
		}
		recorded = append(recorded, a)
		w1.Execute(a)
	}
	replay := NewReplayScheduler(recorded, nil)
	for {
		a, ok := replay.Next(w2)
		if !ok {
			break
		}
		w2.Execute(a)
	}
	if replay.Stalled() {
		t.Fatal("replay stalled on an identical world")
	}
	if replay.Remaining() != 0 {
		t.Fatalf("replay left %d actions", replay.Remaining())
	}
	s1, s2 := w1.Stats(), w2.Stats()
	if s1.Steps != s2.Steps || s1.Sent != s2.Sent || s1.Deliveries != s2.Deliveries {
		t.Fatalf("replay diverged: %+v vs %+v", s1, s2)
	}
}

func TestReplayFallsBack(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, newFixture())
	w.SealInitialState()
	fallback := NewRoundScheduler()
	replay := NewReplayScheduler(nil, fallback)
	act, ok := replay.Next(w)
	if !ok || !act.IsTimeout {
		t.Fatal("empty schedule must fall back")
	}
}

func TestReplayStallsOnDivergence(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, newFixture())
	w.SealInitialState()
	// A recorded delivery that never existed.
	replay := NewReplayScheduler([]Action{{Proc: a, MsgSeq: 999}}, nil)
	if _, ok := replay.Next(w); ok {
		t.Fatal("invalid recorded action must not be returned")
	}
	if !replay.Stalled() {
		t.Fatal("divergence must be flagged")
	}
}
