package sim

import (
	"errors"
	"fmt"
)

// RunOptions configures a run driver.
type RunOptions struct {
	// Variant selects the legitimacy predicate (FDP or FSP).
	Variant Variant
	// MaxSteps bounds the run; exceeding it is a convergence failure.
	MaxSteps int
	// CheckEvery controls how often legitimacy is evaluated (every k
	// steps); 0 selects a default proportional to the system size.
	CheckEvery int
	// CheckSafety verifies the Lemma 2 invariant (relevant processes stay
	// weakly connected per initial component) at every legitimacy check,
	// aborting the run on violation.
	CheckSafety bool
	// SafetyEveryStep verifies the Lemma 2 invariant after *every* step.
	// Expensive; for tests on small systems.
	SafetyEveryStep bool
	// Potential, if set, is sampled at every legitimacy check; the series
	// is returned in the result. Used for the Φ experiments.
	Potential func(*World) int
	// OnStep, if set, runs after every executed action.
	OnStep func(*World)
	// Stop, if set, makes the driver return early (Interrupted=true) once
	// the channel is closed — checked at every legitimacy check, so the
	// granularity is CheckEvery steps. This is the cooperative cancellation
	// the cmd/ binaries' signal handlers use for graceful shutdown.
	Stop <-chan struct{}
}

// RunResult reports the outcome of a run.
type RunResult struct {
	Converged bool // reached a legitimate state within MaxSteps
	Steps     int
	Rounds    int // meaningful when the scheduler is a *RoundScheduler
	Stats     Stats
	// PotentialSeries holds (step, Φ) samples when RunOptions.Potential is
	// set.
	PotentialSteps  []int
	PotentialValues []int
	// SafetyViolation is non-nil if a safety check failed; the run stops
	// immediately in that case.
	SafetyViolation error
	// Interrupted reports that RunOptions.Stop fired before the run reached
	// a verdict; Converged is false in that case unless the final check
	// happened to pass.
	Interrupted bool
}

// ErrSafety is wrapped by any safety-violation error.
var ErrSafety = errors.New("safety violated: relevant processes disconnected")

// Run drives the world under the given scheduler until a legitimate state is
// reached, MaxSteps is exceeded, safety is violated, or no action is enabled.
// SealInitialState must have been called on the world.
func Run(w *World, sched Scheduler, opts RunOptions) RunResult {
	if w.InitialComponents() == nil {
		w.SealInitialState()
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 1 << 20
	}
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = len(w.Refs())
		if checkEvery < 1 {
			checkEvery = 1
		}
	}
	res := RunResult{}
	stopped := func() bool {
		if opts.Stop == nil {
			return false
		}
		select {
		case <-opts.Stop:
			res.Interrupted = true
			return true
		default:
			return false
		}
	}
	sample := func() bool {
		if opts.Potential != nil {
			res.PotentialSteps = append(res.PotentialSteps, w.Steps())
			res.PotentialValues = append(res.PotentialValues, opts.Potential(w))
		}
		if opts.CheckSafety && !w.RelevantComponentsIntact() {
			res.SafetyViolation = fmt.Errorf("%w (step %d)", ErrSafety, w.Steps())
			return false
		}
		return !w.Legitimate(opts.Variant)
	}
	if !sample() {
		res.Converged = res.SafetyViolation == nil
		res.Steps = w.Steps()
		res.Stats = w.Stats()
		res.Rounds = roundsOf(sched)
		return res
	}
	for w.Steps() < opts.MaxSteps {
		a, ok := sched.Next(w)
		if !ok {
			// No action chosen: the world is quiescent (FSP-like states) or
			// the scheduler gave up early. Run the same sample as a periodic
			// check — skipping CheckSafety here would let a run that stalls
			// in a disconnected state report "not converged" with no
			// SafetyViolation, indistinguishable from a liveness failure.
			cont := sample()
			if res.SafetyViolation == nil {
				res.Converged = !cont
			}
			break
		}
		w.Execute(a)
		if opts.OnStep != nil {
			opts.OnStep(w)
		}
		if opts.SafetyEveryStep && !w.RelevantComponentsIntact() {
			res.SafetyViolation = fmt.Errorf("%w (step %d)", ErrSafety, w.Steps())
			break
		}
		if w.Steps()%checkEvery == 0 {
			if !sample() {
				res.Converged = res.SafetyViolation == nil
				break
			}
			if stopped() {
				break
			}
		}
	}
	if !res.Converged && res.SafetyViolation == nil {
		// Final check in case MaxSteps landed between samples.
		res.Converged = w.Legitimate(opts.Variant)
	}
	res.Steps = w.Steps()
	res.Stats = w.Stats()
	res.Rounds = roundsOf(sched)
	return res
}

func roundsOf(s Scheduler) int {
	if rs, ok := s.(*RoundScheduler); ok {
		return rs.Rounds()
	}
	return 0
}
