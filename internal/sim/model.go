// Package sim implements the distributed-system model of Section 1.1 of the
// paper: a fixed set of processes with unique references, a system-based
// channel variable per process holding a multiset of messages (unbounded
// capacity, no loss, no FIFO order), two kinds of actions (remotely callable
// procedures triggered by messages, and guard-based actions of which only
// the timeout action — guard "true" — is used), the special commands exit
// and sleep, and the awake/asleep/gone process state graph of Figure 1.
//
// Computations are infinite fair sequences of atomic action executions.
// Fairness is weakly fair action execution plus fair message receipt; the
// schedulers in this package guarantee both mechanically (see scheduler.go),
// while still exercising fully asynchronous, non-FIFO behaviour.
package sim

import (
	"fmt"

	"fdp/internal/ref"
)

// Mode is the read-only mode(u) variable: staying or leaving.
type Mode uint8

const (
	// Staying processes want to remain in the overlay.
	Staying Mode = iota
	// Leaving processes request to be excluded from the overlay.
	Leaving
	// Unknown is used only inside the Section 4 framework's message list
	// for not-yet-verified references; mode(u) itself is never Unknown.
	Unknown
	// Absent marks a reference whose process is gone (discovered through
	// an undeliverable message); mode(u) itself is never Absent.
	Absent
)

// String returns the lowercase mode name.
func (m Mode) String() string {
	switch m {
	case Staying:
		return "staying"
	case Leaving:
		return "leaving"
	case Absent:
		return "absent"
	default:
		return "unknown"
	}
}

// Life is the lifecycle state of Figure 1: awake, asleep, or gone.
type Life uint8

const (
	// Awake processes execute enabled actions.
	Awake Life = iota
	// Asleep processes only wake up when processing an incoming message.
	Asleep
	// Gone processes executed exit and never act again.
	Gone
)

// String returns the lowercase lifecycle name.
func (l Life) String() string {
	switch l {
	case Awake:
		return "awake"
	case Asleep:
		return "asleep"
	default:
		return "gone"
	}
}

// RefInfo is a process reference as it travels inside a message, together
// with the sender's knowledge of that process's mode (a.mode(b) in the
// paper). The claim may be wrong — that is exactly the invalid information
// the self-stabilizing protocol must eliminate.
type RefInfo struct {
	Ref  ref.Ref
	Mode Mode
}

// String renders "p3:leaving".
func (ri RefInfo) String() string { return fmt.Sprintf("%v:%v", ri.Ref, ri.Mode) }

// Message is a request to call the action named Label on the receiving
// process. Refs carries all process references in the parameter list (each
// with a mode claim); Payload carries any reference-free extra parameters.
// All references a message transports MUST be listed in Refs — the implicit
// edges of PG are computed from it.
type Message struct {
	Label   string
	Refs    []RefInfo
	Payload any

	from    ref.Ref // sender, for tracing only; the model has no implicit sender
	seq     uint64  // arrival sequence number, a stable identity
	enqStep int     // step at which the message entered the channel, for aging

	// Causal metadata, engine-assigned and invisible to protocols: cid is
	// the message's unique causal identity (drawn from the engine's causal
	// counter at send/enqueue), parent the CID of the action event (timeout
	// or delivery) that triggered the send (0 for initial-state messages),
	// and lclock the sender's Lamport clock at send time. Together they
	// carry the happens-before relation across process boundaries (DESIGN.md
	// §11).
	cid    uint64
	parent uint64
	lclock uint64
}

// From returns the sender for tracing and debugging. Protocol code must not
// use it: the paper's messages carry no implicit sender.
func (m Message) From() ref.Ref { return m.from }

// Seq returns the global arrival sequence number of the message.
func (m Message) Seq() uint64 { return m.seq }

// CID returns the message's unique causal identity, assigned by the engine
// when the message entered the system. Tracing and debugging only.
func (m Message) CID() uint64 { return m.cid }

// CausalParent returns the CID of the action event (timeout or delivery)
// whose execution sent this message, or 0 for initial-state messages.
func (m Message) CausalParent() uint64 { return m.parent }

// SendClock returns the sender's Lamport clock at send time (0 for
// initial-state messages).
func (m Message) SendClock() uint64 { return m.lclock }

// EnqueuedAt returns the step at which the message entered its channel. The
// schedulers age messages on it: seq advances once per send while steps
// advance once per action, so comparing seq against the step counter (as an
// earlier revision did) misjudges staleness whenever the send rate differs
// from one per step.
func (m Message) EnqueuedAt() int { return m.enqStep }

// NewMessage builds a message carrying the given references.
func NewMessage(label string, refs ...RefInfo) Message {
	return Message{Label: label, Refs: refs}
}

// StampCausal returns m with the causal metadata set. It exists for the
// concurrent runtime (package parallel), which assigns CIDs from its own
// atomic counter; protocol code never calls it — the engines stamp causal
// identity at send/enqueue themselves.
func StampCausal(m Message, cid, parent, lclock uint64) Message {
	m.cid, m.parent, m.lclock = cid, parent, lclock
	return m
}

// WithSender returns m with the tracing sender set. It exists for the wire
// transport (package transport), which reconstructs messages on the
// receiving node and must restore the sender the originating engine stamped;
// protocol code never calls it — the paper's messages carry no implicit
// sender.
func WithSender(m Message, from ref.Ref) Message {
	m.from = from
	return m
}

// Protocol is the per-process protocol instance: its variables and actions.
// Implementations must be deterministic (iterate reference sets in ref.Sort
// order) so that seeded runs are reproducible.
type Protocol interface {
	// Timeout executes the process's timeout action (guard true). It is
	// invoked only while the process is awake.
	Timeout(ctx Context)
	// Deliver executes the action requested by msg. Unknown labels must be
	// ignored (the model discards messages that name no action).
	Deliver(ctx Context, msg Message)
	// Refs enumerates every process reference currently stored in the
	// process's local variables (including special variables such as the
	// anchor). These are the explicit edges of PG.
	Refs() []ref.Ref
}

// Context is the protocol's interface to the system during one atomic action
// execution.
type Context interface {
	// Self returns the executing process's own reference.
	Self() ref.Ref
	// Mode returns the read-only mode(u) of the executing process.
	Mode() Mode
	// Send executes v <- label(parameters): it asks the process referenced
	// by to for a remote action call. Sends to gone processes vanish.
	Send(to ref.Ref, msg Message)
	// Exit puts the process into the gone state (FDP only).
	Exit()
	// Sleep puts the process into the asleep state (FSP only). It takes
	// effect when the current action completes.
	Sleep()
	// OracleSays consults the world's configured oracle for the executing
	// process. With no oracle configured it returns false, so a protocol
	// guarded by an oracle never exits.
	OracleSays() bool
}

// Sleeper is implemented by protocols that support the FSP variant; the
// world uses it only in tests to distinguish variants.
type Sleeper interface {
	UsesSleep() bool
}

// UndeliverableHandler is implemented by protocols that want to be told,
// within the same atomic action, that a message they sent could not be
// delivered because its target is gone. This models the transport-level
// failure detection (e.g. a broken TCP connection) that Section 4's
// postprocess action presupposes: "postprocess is able to handle messages
// that cannot be delivered". The framework P′ uses it to unwedge pending
// verifications addressed to processes that exited with one remaining
// partner, and the Section 3 protocol uses it too: under guards weaker than
// SINGLE (e.g. EXITSAFE) a delegation through an anchor that exited would
// silently burn the last copy of the carried reference — the churn fuzzer
// found exactly that as a Lemma 2 violation (see DESIGN.md §6 and the
// dead-anchor-delegation fixture).
type UndeliverableHandler interface {
	Undeliverable(ctx Context, to ref.Ref, msg Message)
}
