package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"fdp/internal/ref"
)

// chaosProto drives the incremental process graph through every mutation
// path: it churns its stored references (including duplicates, self, ⊥ and
// gone targets), sends messages carrying random reference lists, queries the
// oracle mid-action (which snapshots PG inside Timeout/Deliver), and — when
// leaving — exits (FDP) or sleeps (FSP).
type chaosProto struct {
	all  []ref.Ref
	rng  *rand.Rand
	refs []ref.Ref // slice, not set: duplicates give explicit multiplicity >1
	fsp  bool
}

func (c *chaosProto) Refs() []ref.Ref { return c.refs }

func (c *chaosProto) Timeout(ctx Context)          { c.act(ctx) }
func (c *chaosProto) Deliver(ctx Context, _ Message) { c.act(ctx) }

func (c *chaosProto) act(ctx Context) {
	if len(c.refs) > 0 && c.rng.Intn(3) == 0 {
		i := c.rng.Intn(len(c.refs))
		c.refs = append(c.refs[:i], c.refs[i+1:]...)
	}
	if c.rng.Intn(2) == 0 {
		// May duplicate an existing ref, reference itself, or a gone process.
		c.refs = append(c.refs, c.all[c.rng.Intn(len(c.all))])
	}
	for n := c.rng.Intn(3); n > 0; n-- {
		to := c.all[c.rng.Intn(len(c.all))]
		var ris []RefInfo
		for k := c.rng.Intn(4); k > 0; k-- {
			r := c.all[c.rng.Intn(len(c.all))]
			switch c.rng.Intn(6) {
			case 0:
				r = ref.Nil
			case 1:
				r = ctx.Self()
			}
			ris = append(ris, RefInfo{Ref: r, Mode: Staying})
		}
		ctx.Send(to, Message{Label: "chaos", Refs: ris})
	}
	if c.rng.Intn(4) == 0 {
		ctx.OracleSays() // exercises mid-action PG queries via diffOracle
	}
	if ctx.Mode() == Leaving && c.rng.Intn(5) == 0 {
		if c.fsp {
			ctx.Sleep()
		} else {
			ctx.Exit()
		}
	}
}

// diffOracle checks, from inside an atomic action, that the incremental
// graph matches a from-scratch rebuild — the acting process's refs may have
// changed mid-action and pgView must fold that delta in before answering.
type diffOracle struct{ t *testing.T }

func (diffOracle) Name() string { return "diff" }

func (d diffOracle) Evaluate(w *World, u ref.Ref) bool {
	d.t.Helper()
	if inc, ref := w.PG(), w.RebuildPG(); !inc.Equal(ref) {
		d.t.Fatalf("mid-action PG diverged for %v:\n  incremental %v\n  rebuilt    %v", u, inc, ref)
	}
	return false
}

// referenceHibernating recomputes the hibernating set from first principles
// on a freshly rebuilt graph, using only public accessors.
func referenceHibernating(w *World) ref.Set {
	pg := w.RebuildPG()
	var active []ref.Ref
	for _, r := range w.Refs() {
		if w.LifeOf(r) == Gone {
			continue
		}
		if w.LifeOf(r) == Awake || w.ChannelLen(r) > 0 {
			active = append(active, r)
		}
	}
	tainted := pg.ForwardReachAll(active)
	out := ref.NewSet()
	for _, r := range w.Refs() {
		if w.LifeOf(r) != Asleep || w.ChannelLen(r) > 0 {
			continue
		}
		if !tainted.Has(r) {
			out.Add(r)
		}
	}
	return out
}

func checkAgainstRebuild(t *testing.T, w *World, step int) {
	t.Helper()
	if inc, reb := w.PG(), w.RebuildPG(); !inc.Equal(reb) {
		t.Fatalf("step %d: PG diverged:\n  incremental %v\n  rebuilt    %v", step, inc, reb)
	}
	if got, want := w.Hibernating(), referenceHibernating(w); !got.Equal(want) {
		t.Fatalf("step %d: Hibernating = %v, want %v", step, got.Sorted(), want.Sorted())
	}
	rel := w.Relevant()
	relPG := w.RelevantPG()
	for _, r := range w.Refs() {
		deg, ok := w.RelevantDegree(r)
		if ok != rel.Has(r) {
			t.Fatalf("step %d: RelevantDegree(%v) relevant=%v, want %v", step, r, ok, rel.Has(r))
		}
		if ok && deg != relPG.Degree(r) {
			t.Fatalf("step %d: RelevantDegree(%v) = %d, want %d", step, r, deg, relPG.Degree(r))
		}
	}
}

// TestIncrementalPGMatchesRebuild is the differential property test of the
// incremental process-graph maintenance: under every scheduler and both
// problem variants, after every step (and mid-action, via diffOracle) the
// incrementally maintained PG must equal a from-scratch rebuild, the cached
// hibernating set must match a first-principles recomputation, and the fast
// degree query must agree with the materialized relevant PG.
func TestIncrementalPGMatchesRebuild(t *testing.T) {
	const n, maxSteps = 10, 300
	schedulers := []func(seed int64) Scheduler{
		func(seed int64) Scheduler { return NewRandomScheduler(seed, 32) },
		func(seed int64) Scheduler { return NewAdversarialScheduler(seed, 32) },
		func(seed int64) Scheduler { return NewRoundScheduler() },
		func(seed int64) Scheduler { return NewFIFOScheduler() },
	}
	names := []string{"random", "adversarial", "rounds", "fifo"}
	for si, mk := range schedulers {
		for _, variant := range []Variant{FDP, FSP} {
			t.Run(fmt.Sprintf("%s/%v", names[si], variant), func(t *testing.T) {
				seed := int64(si)*97 + int64(variant)*13 + 5
				rng := rand.New(rand.NewSource(seed))
				space := ref.NewSpace()
				nodes := space.NewN(n)
				w := NewWorld(diffOracle{t})
				protos := make([]*chaosProto, n)
				for i, r := range nodes {
					mode := Staying
					if i%3 == 0 {
						mode = Leaving
					}
					protos[i] = &chaosProto{
						all: nodes,
						rng: rand.New(rand.NewSource(seed + int64(i) + 1)),
						fsp: variant == FSP,
					}
					// Random initial refs, duplicates allowed.
					for k := rng.Intn(4); k > 0; k-- {
						protos[i].refs = append(protos[i].refs, nodes[rng.Intn(n)])
					}
					w.AddProcess(r, mode, protos[i])
				}
				// Random initial in-flight messages.
				for k := rng.Intn(6); k > 0; k-- {
					w.Enqueue(nodes[rng.Intn(n)], NewMessage("init",
						RefInfo{Ref: nodes[rng.Intn(n)], Mode: Staying}))
				}
				w.SealInitialState()
				s := mk(seed)
				for w.Steps() < maxSteps {
					a, ok := s.Next(w)
					if !ok {
						break
					}
					w.Execute(a)
					// External enqueues interleave with scheduled actions.
					if w.Steps()%37 == 0 {
						w.Enqueue(nodes[rng.Intn(n)], NewMessage("ext",
							RefInfo{Ref: nodes[rng.Intn(n)], Mode: Leaving}))
					}
					checkAgainstRebuild(t, w, w.Steps())
				}
			})
		}
	}
}

// TestInvalidatePGAfterExternalMutation covers the documented contract for
// code that mutates protocol variables outside an atomic action (fault
// injectors, surgical tests): after InvalidatePG the next query reseeds and
// matches a rebuild.
func TestInvalidatePGAfterExternalMutation(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa, fb := newFixture(), newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Staying, fb)
	fa.refs.Add(b)
	if !w.PG().HasEdge(a, b) { // seeds the incremental graph
		t.Fatal("seeded PG missing stored-ref edge")
	}
	fb.refs.Add(a) // external mutation, invisible to the incremental graph
	w.InvalidatePG()
	if inc, reb := w.PG(), w.RebuildPG(); !inc.Equal(reb) {
		t.Fatalf("after InvalidatePG: incremental %v != rebuilt %v", inc, reb)
	}
	if !w.PG().HasEdge(b, a) {
		t.Fatal("reseeded PG missing externally added edge")
	}
}
