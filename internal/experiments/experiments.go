// Package experiments implements the reproduction suite E1–E16 described in
// DESIGN.md: one experiment per formal claim of the paper, each regenerating
// a table (and, where a trend is claimed, a data series standing in for a
// figure). The paper is a brief announcement without an evaluation section,
// so these are the tables/figures its claims imply; EXPERIMENTS.md records
// the measured outcomes.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/graph"
	"fdp/internal/metrics"
	"fdp/internal/oracle"
	"fdp/internal/primitives"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Scale selects the experiment size.
type Scale struct {
	// Sizes are the system sizes n swept by the scaling experiments.
	Sizes []int
	// Trials is the number of seeds per configuration.
	Trials int
	// MaxSteps bounds each simulation run.
	MaxSteps int
}

// Quick is the CI-friendly scale.
func Quick() Scale { return Scale{Sizes: []int{8, 16, 32}, Trials: 3, MaxSteps: 2_000_000} }

// Full is the paper-scale configuration.
func Full() Scale {
	return Scale{Sizes: []int{8, 16, 32, 64, 128}, Trials: 5, MaxSteps: 20_000_000}
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Claim  string // the paper claim being reproduced
	Tables []*metrics.Table
	Series []*metrics.Series
	Notes  []string
	// Pass reports whether the claim's qualitative shape held.
	Pass bool
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// All runs the full suite in order.
func All(s Scale) []Result {
	return []Result{
		E1PrimitivesSafety(s),
		E2Universality(s),
		E3Necessity(),
		E4Safety(s),
		E5Convergence(s),
		E6Potential(s),
		E7Embedding(s),
		E8FSP(s),
		E9Baseline(s),
		E10Oracles(s),
		E11Parallel(s),
		E12Routing(s),
		E13Faults(s),
		E14ModelCheck(),
		E15SkipHops(s),
		E16Differential(s),
	}
}

// --- E1: Lemma 1 — the four primitives preserve weak connectivity ------

// E1PrimitivesSafety applies long random sequences of enabled primitives to
// random weakly connected graphs, checking connectivity after every
// operation.
func E1PrimitivesSafety(s Scale) Result {
	res := Result{
		ID:    "E1",
		Title: "Primitives preserve weak connectivity (Lemma 1)",
		Claim: "Introduction, Delegation, Fusion and Reversal never disconnect PG",
		Pass:  true,
	}
	tb := metrics.NewTable("E1: random primitive sequences on random connected graphs",
		"n", "trials", "ops applied", "disconnections")
	for _, n := range s.Sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		totalOps, disconnections := 0, 0
		for trial := 0; trial < s.Trials; trial++ {
			nodes := ref.NewSpace().NewN(n)
			g := graph.RandomConnected(nodes, rng.Intn(2*n), rng)
			for step := 0; step < 50*n; step++ {
				ops := primitives.EnabledOps(g, nil)
				if len(ops) == 0 {
					break
				}
				if err := primitives.Apply(g, ops[rng.Intn(len(ops))]); err != nil {
					continue
				}
				totalOps++
				if !g.WeaklyConnected() {
					disconnections++
					res.Pass = false
				}
			}
		}
		tb.AddRow(n, s.Trials, totalOps, disconnections)
	}
	res.Tables = append(res.Tables, tb)
	res.note("expected: 0 disconnections everywhere")
	return res
}

// --- E2: Theorem 1 — universality -------------------------------------

// E2Universality transforms random weakly connected graphs into each other
// and measures the primitive counts, plus the O(log n) clique-formation
// round bound from the proof.
func E2Universality(s Scale) Result {
	res := Result{
		ID:    "E2",
		Title: "Universality of the primitives (Theorem 1)",
		Claim: "any weakly connected graph transforms into any other; cliquify needs O(log n) rounds",
		Pass:  true,
	}
	tb := metrics.NewTable("E2: transform random G -> random G' (per-trial averages)",
		"n", "ok", "clique rounds", "log2(n)", "intros", "delegations", "fusions", "reversals")
	series := &metrics.Series{Name: "clique rounds vs n"}
	for _, n := range s.Sizes {
		rng := rand.New(rand.NewSource(int64(n) * 7))
		var rounds, intro, deleg, fus, rev metrics.Sample
		ok := true
		for trial := 0; trial < s.Trials; trial++ {
			nodes := ref.NewSpace().NewN(n)
			from := graph.RandomConnected(nodes, rng.Intn(n), rng)
			to := graph.RandomConnected(nodes, rng.Intn(n), rng)
			stats, err := primitives.Transform(from, to, primitives.TransformOptions{})
			if err != nil || !from.SameSimpleDigraph(to) {
				ok = false
				res.Pass = false
				continue
			}
			rounds.AddInt(stats.CliqueRounds)
			intro.AddInt(stats.Introductions)
			deleg.AddInt(stats.Delegations)
			fus.AddInt(stats.Fusions)
			rev.AddInt(stats.Reversals)
		}
		tb.AddRow(n, ok, rounds.Mean(), math.Log2(float64(n)),
			intro.Mean(), deleg.Mean(), fus.Mean(), rev.Mean())
		series.Append(float64(n), rounds.Mean())
		if rounds.Max() > math.Ceil(math.Log2(float64(n)))+2 {
			res.Pass = false
		}
	}
	res.Tables = append(res.Tables, tb)
	res.Series = append(res.Series, series)
	res.note("clique rounds should track ceil(log2 n) (+small constant)")
	return res
}

// --- E3: Theorem 2 — necessity -----------------------------------------

// E3Necessity runs the witness searches: each target reachable with all
// four primitives, unreachable without the designated one.
func E3Necessity() Result {
	res := Result{
		ID:    "E3",
		Title: "Necessity of each primitive (Theorem 2)",
		Claim: "removing any one primitive breaks universality",
		Pass:  true,
	}
	tb := metrics.NewTable("E3: exhaustive reachability on witness instances",
		"missing primitive", "reachable with all 4", "reachable without it", "states explored")
	for _, w := range primitives.Witnesses() {
		nodes := ref.NewSpace().NewN(w.Nodes)
		start, target := w.Start(nodes), w.Target(nodes)
		full := primitives.Reachable(start, target, primitives.AllKinds(), 0)
		reduced := primitives.Reachable(start, target, primitives.Without(w.Missing), 0)
		tb.AddRow(w.Missing.String(), full.Reachable, reduced.Reachable,
			full.StatesExplored+reduced.StatesExplored)
		if !full.Reachable || reduced.Reachable {
			res.Pass = false
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("expected: every row reachable=true / without=false")
	return res
}

// --- shared FDP run helper ----------------------------------------------

type runOutcome struct {
	converged bool
	safety    bool // true = safety held
	steps     int
	messages  uint64
	maxChan   int
}

func runFDP(cfg churn.Config, maxSteps int) runOutcome {
	s := churn.Build(cfg)
	variant := sim.FDP
	if cfg.Variant == core.VariantFSP {
		variant = sim.FSP
	}
	r := sim.Run(s.World, sim.NewRandomScheduler(cfg.Seed+1000, 512), sim.RunOptions{
		Variant: variant, MaxSteps: maxSteps, CheckSafety: true,
	})
	return runOutcome{
		converged: r.Converged,
		safety:    r.SafetyViolation == nil,
		steps:     r.Steps,
		messages:  r.Stats.Sent,
		maxChan:   r.Stats.MaxChannel,
	}
}

// --- E4: Lemma 2 — safety ----------------------------------------------

// E4Safety sweeps topologies, leave fractions and corruption, checking the
// Lemma 2 invariant on every run.
func E4Safety(s Scale) Result {
	res := Result{
		ID:    "E4",
		Title: "Protocol safety (Lemma 2)",
		Claim: "relevant processes are never disconnected, from any initial state",
		Pass:  true,
	}
	tb := metrics.NewTable("E4: safety sweep (corrupted initial states)",
		"topology", "leave", "runs", "safety violations", "convergence failures")
	topos := []churn.Topology{churn.TopoLine, churn.TopoRing, churn.TopoStar, churn.TopoTree, churn.TopoRandom}
	n := s.Sizes[min(1, len(s.Sizes)-1)]
	for _, topo := range topos {
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			violations, failures := 0, 0
			for trial := 0; trial < s.Trials; trial++ {
				out := runFDP(churn.Config{
					N: n, Topology: topo, LeaveFraction: frac,
					Pattern: churn.LeaveRandom,
					Corrupt: churn.Corruption{FlipBeliefs: 0.4, RandomAnchors: 0.5, JunkMessages: n},
					Oracle:  oracle.Single{}, Seed: int64(trial),
				}, s.MaxSteps)
				if !out.safety {
					violations++
					res.Pass = false
				}
				if !out.converged {
					failures++
					res.Pass = false
				}
			}
			tb.AddRow(topo.String(), frac, s.Trials, violations, failures)
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("expected: 0 violations, 0 failures (n=%d)", n)
	return res
}

// --- E5: Lemma 3 + Theorem 3 — convergence ------------------------------

// E5Convergence measures steps and messages to legitimacy vs n and leave
// fraction (the scaling "figure" of the protocol).
func E5Convergence(s Scale) Result {
	res := Result{
		ID:    "E5",
		Title: "Convergence to a legitimate state (Lemma 3, Theorem 3)",
		Claim: "all leaving processes eventually exit; work grows moderately with n",
		Pass:  true,
	}
	tb := metrics.NewTable("E5: steps/rounds/messages to legitimacy (random topology, 50% leaving, means)",
		"n", "converged", "steps", "rounds", "messages", "messages/node", "max channel")
	stepSeries := &metrics.Series{Name: "steps to legitimacy vs n"}
	roundSeries := &metrics.Series{Name: "rounds to legitimacy vs n"}
	msgSeries := &metrics.Series{Name: "messages per node vs n"}
	for _, n := range s.Sizes {
		var steps, rounds, msgs, maxch metrics.Sample
		allOK := true
		for trial := 0; trial < s.Trials; trial++ {
			cfg := churn.Config{
				N: n, Topology: churn.TopoRandom, LeaveFraction: 0.5,
				Pattern: churn.LeaveRandom,
				Corrupt: churn.Corruption{FlipBeliefs: 0.3, RandomAnchors: 0.3, JunkMessages: n / 2},
				Oracle:  oracle.Single{}, Seed: int64(trial) + 40,
			}
			out := runFDP(cfg, s.MaxSteps)
			if !out.converged || !out.safety {
				allOK = false
				res.Pass = false
				continue
			}
			steps.AddInt(out.steps)
			msgs.AddInt(int(out.messages))
			maxch.AddInt(out.maxChan)
			// Rounds metric: the same scenario under the round scheduler
			// (the standard asynchronous time measure).
			sc := churn.Build(cfg)
			rr := sim.Run(sc.World, sim.NewRoundScheduler(), sim.RunOptions{
				Variant: sim.FDP, MaxSteps: s.MaxSteps,
			})
			if rr.Converged {
				rounds.AddInt(rr.Rounds)
			} else {
				allOK = false
				res.Pass = false
			}
		}
		tb.AddRow(n, allOK, steps.Mean(), rounds.Mean(), msgs.Mean(), msgs.Mean()/float64(n), maxch.Mean())
		stepSeries.Append(float64(n), steps.Mean())
		roundSeries.Append(float64(n), rounds.Mean())
		msgSeries.Append(float64(n), msgs.Mean()/float64(n))
	}
	res.Tables = append(res.Tables, tb)
	res.Series = append(res.Series, stepSeries, roundSeries, msgSeries)
	// Second table: effect of the leave fraction at fixed n.
	n := s.Sizes[min(1, len(s.Sizes)-1)]
	tb2 := metrics.NewTable(fmt.Sprintf("E5b: effect of leave fraction (n=%d, means)", n),
		"leave fraction", "steps", "messages")
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		var steps, msgs metrics.Sample
		for trial := 0; trial < s.Trials; trial++ {
			out := runFDP(churn.Config{
				N: n, Topology: churn.TopoRandom, LeaveFraction: frac,
				Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: int64(trial) + 90,
			}, s.MaxSteps)
			if out.converged {
				steps.AddInt(out.steps)
				msgs.AddInt(int(out.messages))
			} else {
				res.Pass = false
			}
		}
		tb2.AddRow(frac, steps.Mean(), msgs.Mean())
	}
	res.Tables = append(res.Tables, tb2)
	return res
}

// --- E6: the potential function Φ ---------------------------------------

// E6Potential traces Φ along runs with increasing initial corruption and
// checks monotone non-increase (the Lemma 3 argument).
func E6Potential(s Scale) Result {
	res := Result{
		ID:    "E6",
		Title: "Potential function Φ decays monotonically (Lemma 3)",
		Claim: "Φ never increases and reaches 0",
		Pass:  true,
	}
	n := s.Sizes[min(1, len(s.Sizes)-1)]
	tb := metrics.NewTable(fmt.Sprintf("E6: Φ decay (n=%d)", n),
		"belief corruption", "initial Φ", "final Φ", "monotone", "steps to Φ=0")
	for _, p := range []float64{0.2, 0.5, 0.8, 1.0} {
		sc := churn.Build(churn.Config{
			N: n, Topology: churn.TopoRandom, LeaveFraction: 0.4,
			Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{FlipBeliefs: p, RandomAnchors: p, JunkMessages: n},
			Oracle:  oracle.Single{}, Seed: int64(p * 100),
		})
		initial := core.Phi(sc.World)
		monotone := true
		last := initial
		zeroAt := -1
		r := sim.Run(sc.World, sim.NewRandomScheduler(int64(p*100), 512), sim.RunOptions{
			Variant: sim.FDP, MaxSteps: s.MaxSteps,
			OnStep: func(w *sim.World) {
				phi := core.Phi(w)
				if phi > last {
					monotone = false
				}
				if phi == 0 && zeroAt < 0 {
					zeroAt = w.Steps()
				}
				last = phi
			},
		})
		final := last
		tb.AddRow(p, initial, final, monotone, zeroAt)
		if !monotone || !r.Converged || final != 0 {
			res.Pass = false
		}
		if p == 1.0 {
			// Record one full decay trace as the "figure".
			trace := &metrics.Series{Name: "phi decay (full corruption)"}
			sc2 := churn.Build(churn.Config{
				N: n, Topology: churn.TopoRandom, LeaveFraction: 0.4,
				Pattern: churn.LeaveRandom,
				Corrupt: churn.Corruption{FlipBeliefs: 1, RandomAnchors: 1, JunkMessages: n},
				Oracle:  oracle.Single{}, Seed: 4242,
			})
			rr := sim.Run(sc2.World, sim.NewRandomScheduler(4242, 512), sim.RunOptions{
				Variant: sim.FDP, MaxSteps: s.MaxSteps, CheckEvery: 5,
				Potential: core.Phi,
			})
			for i := range rr.PotentialSteps {
				trace.Append(float64(rr.PotentialSteps[i]), float64(rr.PotentialValues[i]))
			}
			res.Series = append(res.Series, trace)
			if !trace.NonIncreasing() {
				res.Pass = false
			}
		}
	}
	res.Tables = append(res.Tables, tb)
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
