package experiments

import (
	"fmt"

	"fdp/internal/app"
	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/faults"
	"fdp/internal/framework"
	"fdp/internal/metrics"
	"fdp/internal/oracle"
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// --- E12: application availability under departures ----------------------

// E12Routing measures lookup availability over a wrapped routed-list
// overlay in three phases: mid-churn (departures in flight), and after
// convergence. Lookups swallowed by leaving receivers count as lost — the
// application-level cost of churn that safe departures bound.
func E12Routing(s Scale) Result {
	res := Result{
		ID:    "E12",
		Title: "Lookup availability under departures (application layer)",
		Claim: "after safe departures, greedy routing over the staying overlay is fully available again",
		Pass:  true,
	}
	n := s.Sizes[min(1, len(s.Sizes)-1)]
	tb := metrics.NewTable(fmt.Sprintf("E12: greedy lookups over the wrapped sorted list (n=%d, 30%% leaving, totals over %d seeds)", n, s.Trials),
		"phase", "launched", "delivered", "failed", "lost", "mean hops")
	type phaseTotals struct{ launched, delivered, failed, hops int }
	var during, after phaseTotals

	for trial := 0; trial < s.Trials; trial++ {
		sc := framework.Build(framework.Config{
			N: n, LeaveFraction: 0.3, Oracle: oracle.Single{},
			Seed: int64(trial), ExtraEdges: n / 2,
			MakeOverlay: func(keys overlay.Keys) overlay.Protocol { return app.NewRoutedList(keys) },
		})
		sched := sim.NewRandomScheduler(int64(trial), 512)
		staying := sc.StayingNodes()
		routers := func() map[ref.Ref]*app.Routed {
			out := make(map[ref.Ref]*app.Routed, len(staying))
			for _, r := range staying {
				out[r] = sc.Wrappers[r].Overlay().(*app.Routed)
			}
			return out
		}()
		snapshot := func() phaseTotals {
			var t phaseTotals
			for _, r := range routers {
				st := r.Stats()
				t.delivered += st.Delivered
				t.failed += st.Failed
				t.hops += st.TotalHops
			}
			return t
		}
		launchAll := func() int {
			count := 0
			for i, from := range staying {
				target := staying[(i+len(staying)/2)%len(staying)]
				sc.World.Enqueue(from, sim.Message{
					Label:   app.LabelRoute,
					Refs:    []sim.RefInfo{{Ref: from, Mode: sim.Staying}},
					Payload: app.RoutePayload{TargetKey: sc.Keys[target], TTL: 4 * n},
				})
				count++
			}
			return count
		}

		// Phase 1: mid-churn — a short prefix of the run, then lookups.
		step(sc, sched, 5*n)
		base := snapshot()
		during.launched += launchAll()
		runToLegit(sc, sched, s.MaxSteps)
		drained := snapshot()
		during.delivered += drained.delivered - base.delivered
		during.failed += drained.failed - base.failed
		during.hops += drained.hops - base.hops

		// Phase 2: after convergence — full availability expected.
		base = snapshot()
		launched := launchAll()
		after.launched += launched
		step(sc, sched, 200*n)
		finals := snapshot()
		after.delivered += finals.delivered - base.delivered
		after.failed += finals.failed - base.failed
		after.hops += finals.hops - base.hops
	}

	row := func(name string, t phaseTotals) {
		lost := t.launched - t.delivered - t.failed
		mean := 0.0
		if t.delivered > 0 {
			mean = float64(t.hops) / float64(t.delivered)
		}
		tb.AddRow(name, t.launched, t.delivered, t.failed, lost, mean)
	}
	row("during departures", during)
	row("after convergence", after)
	res.Tables = append(res.Tables, tb)
	if after.delivered != after.launched {
		res.Pass = false // availability must be total once converged
	}
	if during.delivered+during.failed > during.launched {
		res.Pass = false // accounting sanity
	}
	res.note("lost = swallowed by leaving receivers mid-churn; must be 0 after convergence")
	return res
}

func step(sc *framework.Scenario, sched sim.Scheduler, steps int) {
	for i := 0; i < steps; i++ {
		a, ok := sched.Next(sc.World)
		if !ok {
			return
		}
		sc.World.Execute(a)
	}
}

func runToLegit(sc *framework.Scenario, sched sim.Scheduler, maxSteps int) bool {
	check := len(sc.Nodes)
	for sc.World.Steps() < maxSteps {
		if sc.World.Steps()%check == 0 && sc.World.Legitimate(sim.FDP) && sc.InTarget() {
			return true
		}
		a, ok := sched.Next(sc.World)
		if !ok {
			break
		}
		sc.World.Execute(a)
	}
	return sc.World.Legitimate(sim.FDP) && sc.InTarget()
}

// --- E13: transient-fault recovery ----------------------------------------

// E13Faults strikes a converged system with transient faults of increasing
// intensity and measures re-convergence (the self-stabilization property in
// its original sense: recovery from transient faults, not just bad starts).
//
// The FSP variant is the interesting target: after convergence the leavers
// are hibernating (asleep but present), so a strike can scramble their
// anchors, flip beliefs about them, and inject junk messages that wake them
// — and the system must put every leaver back to permanent sleep. (In the
// FDP a converged system has no leavers left: any strike leaves the state
// trivially legitimate, so there would be nothing to measure. The FDP's
// mid-run fault tolerance is covered by E4's corrupted *initial* states,
// which are exactly "post-fault" states.)
func E13Faults(s Scale) Result {
	res := Result{
		ID:    "E13",
		Title: "Recovery from transient faults at runtime (FSP)",
		Claim: "self-stabilization: the protocol re-converges after any transient state corruption",
		Pass:  true,
	}
	n := s.Sizes[min(1, len(s.Sizes)-1)]
	tb := metrics.NewTable(fmt.Sprintf("E13: strike intensity vs recovery (FSP, n=%d, means over %d seeds)", n, s.Trials),
		"intensity", "beliefs flipped", "anchors scrambled", "junk msgs", "woken leavers", "recovery steps", "failures")
	for _, intensity := range []float64{0.25, 0.5, 1.0} {
		var flips, anchors, junk, woken, recovery metrics.Sample
		failures := 0
		for trial := 0; trial < s.Trials; trial++ {
			sc := churn.Build(churn.Config{
				N: n, Topology: churn.TopoRandom, LeaveFraction: 0.4,
				Pattern: churn.LeaveRandom, Variant: core.VariantFSP,
				Seed: int64(trial) + 500,
			})
			sched := sim.NewRandomScheduler(int64(trial)+500, 512)
			first := sim.Run(sc.World, sched, sim.RunOptions{
				Variant: sim.FSP, MaxSteps: s.MaxSteps,
			})
			if !first.Converged {
				failures++
				res.Pass = false
				continue
			}
			wakesBefore := sc.World.Stats().Wakes
			inj := faults.New(faults.Config{
				FlipBeliefs:     intensity,
				ScrambleAnchors: intensity,
				JunkMessages:    int(intensity * float64(n)),
			}, int64(trial)+900)
			rep := inj.Strike(sc.World)
			flips.AddInt(rep.BeliefsFlipped)
			anchors.AddInt(rep.AnchorsScrambled)
			junk.AddInt(rep.MessagesInjected)
			before := sc.World.Steps()
			second := sim.Run(sc.World, sched, sim.RunOptions{
				Variant: sim.FSP, MaxSteps: before + s.MaxSteps, CheckSafety: true,
			})
			if !second.Converged || second.SafetyViolation != nil {
				failures++
				res.Pass = false
				continue
			}
			woken.AddInt(int(sc.World.Stats().Wakes - wakesBefore))
			recovery.AddInt(second.Steps - before)
		}
		tb.AddRow(intensity, flips.Mean(), anchors.Mean(), junk.Mean(), woken.Mean(), recovery.Mean(), failures)
	}
	res.Tables = append(res.Tables, tb)
	res.note("junk messages wake hibernating leavers; all must return to permanent sleep")
	return res
}

// --- E14: exhaustive schedule checking ------------------------------------

// E14ModelCheck runs the bounded explicit-state model checker on the
// minimal dangerous instance (line of three, middle leaving): every
// schedule up to the depth bound is safe with SINGLE, and the checker
// exhibits a concrete unsafe schedule with the constant-true oracle.
func E14ModelCheck() Result {
	res := Result{
		ID:    "E14",
		Title: "Exhaustive schedule exploration (bounded model checking)",
		Claim: "safety holds on EVERY schedule (not just sampled ones); without the oracle it provably does not",
		Pass:  true,
	}
	tb := metrics.NewTable("E14: line of 3, middle node leaving, all schedules",
		"oracle", "depth", "states", "violation found", "legitimate states reached")
	// This experiment reuses the checker through the test-facing helper in
	// internal/check; construct the worlds directly here.
	build := func(orc sim.Oracle) *sim.World {
		space := ref.NewSpace()
		a, u, b := space.New(), space.New(), space.New()
		w := sim.NewWorld(orc)
		pa, pu, pb := core.New(core.VariantFDP), core.New(core.VariantFDP), core.New(core.VariantFDP)
		w.AddProcess(a, sim.Staying, pa)
		w.AddProcess(u, sim.Leaving, pu)
		w.AddProcess(b, sim.Staying, pb)
		pa.SetNeighbor(u, sim.Leaving)
		pu.SetNeighbor(a, sim.Staying)
		pu.SetNeighbor(b, sim.Staying)
		pb.SetNeighbor(u, sim.Leaving)
		w.SealInitialState()
		return w
	}
	explore := func(orc sim.Oracle, depth int) (states int, violated bool, legit int) {
		out := exploreWorld(build(orc), depth)
		return out.StatesExplored, !out.OK(), out.LegitimateStates
	}
	states, violated, legit := explore(oracle.Single{}, 12)
	tb.AddRow("SINGLE", 12, states, violated, legit)
	if violated || legit == 0 {
		res.Pass = false
	}
	states, violated, legit = explore(oracle.Always(true), 10)
	tb.AddRow("TRUE (unsafe)", 10, states, violated, legit)
	if !violated {
		res.Pass = false
	}
	res.Tables = append(res.Tables, tb)
	res.note("the TRUE row's violation is the 2-action schedule: leaver funnels, then exits")
	return res
}
