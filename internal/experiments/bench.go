package experiments

import (
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/metrics"
	"fdp/internal/obs"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

// BenchQuantiles summarizes one latency sample with exact (nearest-rank)
// percentiles, as opposed to the interpolated bucket quantiles the live
// /metrics endpoint reports.
type BenchQuantiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

func quantiles(s *metrics.Sample) BenchQuantiles {
	return BenchQuantiles{
		Count: s.N(),
		P50:   s.Percentile(50),
		P99:   s.Percentile(99),
		Mean:  s.Mean(),
		Max:   s.Max(),
	}
}

// BenchPoint is one system size in a bench series.
type BenchPoint struct {
	Size        int               `json:"size"`
	TimeToExit  BenchQuantiles    `json:"time_to_exit"`
	OracleCalls uint64            `json:"oracle_calls"`
	Events      map[string]uint64 `json:"events"`
	Converged   int               `json:"converged"`
	Trials      int               `json:"trials"`
}

// BenchReport is one engine's machine-readable benchmark: the payload of
// the BENCH_<engine>.json artifacts the bench harness emits for CI.
type BenchReport struct {
	Name   string       `json:"name"`
	Engine string       `json:"engine"`
	// Unit is the unit of the time-to-exit series: "steps" for the
	// sequential engine (logical time), "seconds" for the concurrent one
	// (wall clock).
	Unit   string       `json:"unit"`
	Series []BenchPoint `json:"series"`
}

func benchScenario(n int, seed int64) churn.Config {
	return churn.Config{
		N: n, Topology: churn.TopoRandom, LeaveFraction: 0.5,
		Pattern: churn.LeaveRandom, Variant: core.VariantFDP,
		Oracle: oracle.Single{}, Seed: seed,
	}
}

// SimBenchSizeCap bounds the sequential engine's bench series. The random
// scheduler's enabled-action scan is O(n) per step, so sequential churn is
// O(n²) per trial and a n=100k point would run for hours; sizes above the
// cap are reported only by the concurrent engine.
const SimBenchSizeCap = 2048

// trialsFor scales the per-size trial count down as n grows so large-n
// points stay affordable: full trials through n=256, two through n=4096,
// one above that. p50/p99 come from per-exit latencies, so even one trial
// of a n=100k run yields a 50k-sample distribution.
func trialsFor(s Scale, n int) int {
	switch {
	case n <= 256:
		return s.Trials
	case n <= 4096:
		return min(s.Trials, 2)
	default:
		return 1
	}
}

// benchTimeout is the per-trial convergence budget of the concurrent
// engine: large-n churn legitimately needs minutes of wall clock.
func benchTimeout(n int) time.Duration {
	if n > 4096 {
		return 10 * time.Minute
	}
	return time.Minute
}

// Bench runs the FDP churn benchmark on both engines and returns one report
// per engine, each with a per-size time-to-exit p50/p99 series plus event
// and oracle-call counts. Sizes above SimBenchSizeCap appear only in the
// concurrent engine's report. When reg is non-nil every run is additionally
// instrumented into it, so a live /metrics endpoint shows the benchmark's
// aggregate series while it executes.
func Bench(s Scale, reg *obs.Registry) []BenchReport {
	return []BenchReport{benchSequential(s, reg), benchConcurrent(s, reg)}
}

func benchSequential(s Scale, reg *obs.Registry) BenchReport {
	rep := BenchReport{Name: "fdp-churn-time-to-exit", Engine: "sim", Unit: "steps"}
	for _, n := range s.Sizes {
		if n > SimBenchSizeCap {
			continue
		}
		var tte metrics.Sample
		var kinds [sim.NumEventKinds]uint64
		calls := obs.NewRegistry()
		trials := trialsFor(s, n)
		point := BenchPoint{Size: n, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			seed := int64(n*1000 + trial)
			scn := benchScenario(n, seed)
			scn.Oracle = obs.CountOracle(scn.Oracle, calls)
			built := churn.Build(scn)
			built.World.AddEventHook(func(e sim.Event) {
				kinds[e.Kind]++
				if e.Kind == sim.EvExit {
					tte.AddInt(e.Step)
				}
			})
			if reg != nil {
				obs.InstrumentWorld(built.World, reg)
			}
			res := sim.Run(built.World, sim.NewRandomScheduler(seed, 0), sim.RunOptions{
				Variant: sim.FDP, MaxSteps: s.MaxSteps,
			})
			if res.Converged {
				point.Converged++
			}
		}
		point.TimeToExit = quantiles(&tte)
		point.OracleCalls = calls.Counter(obs.MetricOracleCalls, "").Value()
		point.Events = kindMap(kinds[:])
		rep.Series = append(rep.Series, point)
	}
	return rep
}

func benchConcurrent(s Scale, reg *obs.Registry) BenchReport {
	rep := BenchReport{Name: "fdp-churn-time-to-exit", Engine: "runtime", Unit: "seconds"}
	for _, n := range s.Sizes {
		var tte metrics.Sample
		var kinds [sim.NumEventKinds]uint64
		calls := obs.NewRegistry()
		trials := trialsFor(s, n)
		point := BenchPoint{Size: n, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			seed := int64(n*1000 + trial)
			orc := obs.CountOracle(oracle.Single{}, calls)
			rt, _ := buildParallel(n, seed, orc)
			if reg != nil {
				obs.InstrumentRuntime(rt, reg)
			}
			if rt.RunUntil(func(w *sim.World) bool { return w.Legitimate(sim.FDP) },
				2*time.Millisecond, benchTimeout(n)) {
				point.Converged++
			}
			for k := 0; k < sim.NumEventKinds; k++ {
				kinds[k] += rt.KindCount(sim.EventKind(k))
			}
			for _, d := range rt.ExitLatencies() {
				tte.Add(d.Seconds())
			}
		}
		point.TimeToExit = quantiles(&tte)
		point.OracleCalls = calls.Counter(obs.MetricOracleCalls, "").Value()
		point.Events = kindMap(kinds[:])
		rep.Series = append(rep.Series, point)
	}
	return rep
}

func kindMap(kinds []uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for k, c := range kinds {
		if c > 0 {
			out[sim.EventKind(k).String()] = c
		}
	}
	return out
}
