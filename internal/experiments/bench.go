package experiments

import (
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/metrics"
	"fdp/internal/obs"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

// BenchQuantiles summarizes one latency sample with exact (nearest-rank)
// percentiles, as opposed to the interpolated bucket quantiles the live
// /metrics endpoint reports.
type BenchQuantiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

func quantiles(s *metrics.Sample) BenchQuantiles {
	return BenchQuantiles{
		Count: s.N(),
		P50:   s.Percentile(50),
		P99:   s.Percentile(99),
		Mean:  s.Mean(),
		Max:   s.Max(),
	}
}

// BenchPoint is one system size in a bench series.
type BenchPoint struct {
	Size        int               `json:"size"`
	TimeToExit  BenchQuantiles    `json:"time_to_exit"`
	OracleCalls uint64            `json:"oracle_calls"`
	Events      map[string]uint64 `json:"events"`
	Converged   int               `json:"converged"`
	Trials      int               `json:"trials"`
}

// BenchReport is one engine's machine-readable benchmark: the payload of
// the BENCH_<engine>.json artifacts the bench harness emits for CI.
type BenchReport struct {
	Name   string       `json:"name"`
	Engine string       `json:"engine"`
	// Unit is the unit of the time-to-exit series: "steps" for the
	// sequential engine (logical time), "seconds" for the concurrent one
	// (wall clock).
	Unit   string       `json:"unit"`
	Series []BenchPoint `json:"series"`
}

func benchScenario(n int, seed int64) churn.Config {
	return churn.Config{
		N: n, Topology: churn.TopoRandom, LeaveFraction: 0.5,
		Pattern: churn.LeaveRandom, Variant: core.VariantFDP,
		Oracle: oracle.Single{}, Seed: seed,
	}
}

// Bench runs the FDP churn benchmark on both engines and returns one report
// per engine, each with a per-size time-to-exit p50/p99 series plus event
// and oracle-call counts. When reg is non-nil every run is additionally
// instrumented into it, so a live /metrics endpoint shows the benchmark's
// aggregate series while it executes.
func Bench(s Scale, reg *obs.Registry) []BenchReport {
	return []BenchReport{benchSequential(s, reg), benchConcurrent(s, reg)}
}

func benchSequential(s Scale, reg *obs.Registry) BenchReport {
	rep := BenchReport{Name: "fdp-churn-time-to-exit", Engine: "sim", Unit: "steps"}
	for _, n := range s.Sizes {
		var tte metrics.Sample
		var kinds [sim.NumEventKinds]uint64
		calls := obs.NewRegistry()
		point := BenchPoint{Size: n, Trials: s.Trials}
		for trial := 0; trial < s.Trials; trial++ {
			seed := int64(n*1000 + trial)
			scn := benchScenario(n, seed)
			scn.Oracle = obs.CountOracle(scn.Oracle, calls)
			built := churn.Build(scn)
			built.World.AddEventHook(func(e sim.Event) {
				kinds[e.Kind]++
				if e.Kind == sim.EvExit {
					tte.AddInt(e.Step)
				}
			})
			if reg != nil {
				obs.InstrumentWorld(built.World, reg)
			}
			res := sim.Run(built.World, sim.NewRandomScheduler(seed, 0), sim.RunOptions{
				Variant: sim.FDP, MaxSteps: s.MaxSteps,
			})
			if res.Converged {
				point.Converged++
			}
		}
		point.TimeToExit = quantiles(&tte)
		point.OracleCalls = calls.Counter(obs.MetricOracleCalls, "").Value()
		point.Events = kindMap(kinds[:])
		rep.Series = append(rep.Series, point)
	}
	return rep
}

func benchConcurrent(s Scale, reg *obs.Registry) BenchReport {
	rep := BenchReport{Name: "fdp-churn-time-to-exit", Engine: "runtime", Unit: "seconds"}
	for _, n := range s.Sizes {
		var tte metrics.Sample
		var kinds [sim.NumEventKinds]uint64
		calls := obs.NewRegistry()
		point := BenchPoint{Size: n, Trials: s.Trials}
		for trial := 0; trial < s.Trials; trial++ {
			seed := int64(n*1000 + trial)
			orc := obs.CountOracle(oracle.Single{}, calls)
			rt, _ := buildParallel(n, seed, orc)
			if reg != nil {
				obs.InstrumentRuntime(rt, reg)
			}
			if rt.RunUntil(func(w *sim.World) bool { return w.Legitimate(sim.FDP) },
				2*time.Millisecond, time.Minute) {
				point.Converged++
			}
			for k := 0; k < sim.NumEventKinds; k++ {
				kinds[k] += rt.KindCount(sim.EventKind(k))
			}
			for _, d := range rt.ExitLatencies() {
				tte.Add(d.Seconds())
			}
		}
		point.TimeToExit = quantiles(&tte)
		point.OracleCalls = calls.Counter(obs.MetricOracleCalls, "").Value()
		point.Events = kindMap(kinds[:])
		rep.Series = append(rep.Series, point)
	}
	return rep
}

func kindMap(kinds []uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for k, c := range kinds {
		if c > 0 {
			out[sim.EventKind(k).String()] = c
		}
	}
	return out
}
