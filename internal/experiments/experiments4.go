package experiments

import (
	"fdp/internal/app"
	"fdp/internal/graph"
	"fdp/internal/metrics"
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// --- E15: what richer overlays buy lookups --------------------------------

// E15SkipHops compares end-to-end greedy lookup hop counts on the plain
// sorted list vs the two-level skip list, across system sizes: the level-1
// shortcuts roughly halve route lengths — the classic reason skip overlays
// exist, here demonstrated on stabilized overlays built by class-𝒫
// protocols.
func E15SkipHops(s Scale) Result {
	res := Result{
		ID:    "E15",
		Title: "Lookup hop counts: sorted list vs two-level skip list",
		Claim: "(extension) level-1 shortcuts roughly halve greedy route lengths",
		Pass:  true,
	}
	tb := metrics.NewTable("E15: mean hops for all-pairs lookups on converged overlays",
		"n", "list hops", "skip hops", "ratio")
	series := &metrics.Series{Name: "skip/list hop ratio vs n"}
	for _, n := range s.Sizes {
		listHops, ok1 := meanHops(n, false, s.MaxSteps)
		skipHops, ok2 := meanHops(n, true, s.MaxSteps)
		if !ok1 || !ok2 {
			res.Pass = false
			continue
		}
		ratio := skipHops / listHops
		tb.AddRow(n, listHops, skipHops, ratio)
		series.Append(float64(n), ratio)
		// The asymptotic ratio for a 1-level shortcut structure is 1/2; with
		// constant overheads anything clearly below 0.8 demonstrates the
		// effect.
		if n >= 16 && ratio > 0.8 {
			res.Pass = false
		}
	}
	res.Tables = append(res.Tables, tb)
	res.Series = append(res.Series, series)
	res.note("lookups: every node looks up every key after the overlay converged")
	return res
}

// meanHops builds a converged overlay of size n and measures the mean hop
// count over all-pairs lookups.
func meanHops(n int, skip bool, maxSteps int) (float64, bool) {
	nodes := ref.NewSpace().NewN(n)
	keys := make(overlay.Keys, n)
	for i, r := range nodes {
		keys[r] = i
	}
	w := sim.NewWorld(nil)
	procs := make(map[ref.Ref]*app.Routed, n)
	for _, r := range nodes {
		var p *app.Routed
		if skip {
			p = app.NewRoutedSkip(keys)
		} else {
			p = app.NewRoutedList(keys)
		}
		procs[r] = p
		w.AddProcess(r, sim.Staying, &overlay.Standalone{P: p})
	}
	g := graph.Line(nodes)
	for _, e := range g.Edges() {
		procs[e.From].AddNeighbor(e.To)
	}
	w.SealInitialState()
	sched := sim.NewRandomScheduler(int64(n), 256)
	for w.Steps() < maxSteps {
		if w.Steps()%n == 0 && overlay.CheckTarget(w, nodes) {
			break
		}
		a, ok := sched.Next(w)
		if !ok {
			break
		}
		w.Execute(a)
	}
	if !overlay.CheckTarget(w, nodes) {
		return 0, false
	}
	launched := 0
	for _, from := range nodes {
		for k := 0; k < n; k++ {
			if keys[from] == k {
				continue
			}
			w.Enqueue(from, sim.Message{
				Label:   app.LabelRoute,
				Refs:    []sim.RefInfo{{Ref: from, Mode: sim.Staying}},
				Payload: app.RoutePayload{TargetKey: k, TTL: 4 * n},
			})
			launched++
		}
	}
	budget := w.Steps() + 400*n*n
	for w.Steps() < budget {
		a, ok := sched.Next(w)
		if !ok {
			break
		}
		w.Execute(a)
		if delivered(procs) >= launched {
			break
		}
	}
	var total app.Stats
	for _, p := range procs {
		st := p.Stats()
		total.Delivered += st.Delivered
		total.TotalHops += st.TotalHops
	}
	if total.Delivered != launched {
		return 0, false
	}
	return float64(total.TotalHops) / float64(total.Delivered), true
}

func delivered(procs map[ref.Ref]*app.Routed) int {
	n := 0
	for _, p := range procs {
		n += p.Stats().Delivered
	}
	return n
}
