package experiments

import (
	"fdp/internal/check"
	"fdp/internal/sim"
)

// exploreWorld runs the bounded model checker with the Lemma 2 invariant.
func exploreWorld(w *sim.World, depth int) check.Outcome {
	return check.Explore(w, check.Options{
		MaxDepth:         depth,
		MaxStates:        500000,
		Invariant:        check.SafetyInvariant(),
		Variant:          sim.FDP,
		StopAtLegitimate: true,
	})
}
