package experiments

import (
	"strings"
	"testing"
)

// tiny returns a minimal scale for test speed.
func tiny() Scale { return Scale{Sizes: []int{8, 12}, Trials: 2, MaxSteps: 2_000_000} }

func checkResult(t *testing.T, r Result) {
	t.Helper()
	if !r.Pass {
		var b strings.Builder
		for _, tb := range r.Tables {
			b.WriteString(tb.String())
		}
		t.Fatalf("%s (%s) did not pass:\n%s", r.ID, r.Title, b.String())
	}
	if len(r.Tables) == 0 {
		t.Fatalf("%s produced no tables", r.ID)
	}
	for _, tb := range r.Tables {
		if tb.NumRows() == 0 {
			t.Fatalf("%s produced an empty table", r.ID)
		}
	}
}

func TestE1(t *testing.T)  { checkResult(t, E1PrimitivesSafety(tiny())) }
func TestE2(t *testing.T)  { checkResult(t, E2Universality(tiny())) }
func TestE3(t *testing.T)  { checkResult(t, E3Necessity()) }
func TestE4(t *testing.T)  { checkResult(t, E4Safety(tiny())) }
func TestE5(t *testing.T)  { checkResult(t, E5Convergence(tiny())) }
func TestE6(t *testing.T)  { checkResult(t, E6Potential(tiny())) }
func TestE7(t *testing.T)  { checkResult(t, E7Embedding(tiny())) }
func TestE8(t *testing.T)  { checkResult(t, E8FSP(tiny())) }
func TestE9(t *testing.T)  { checkResult(t, E9Baseline(tiny())) }
func TestE10(t *testing.T) { checkResult(t, E10Oracles(tiny())) }

func TestE12(t *testing.T) { checkResult(t, E12Routing(tiny())) }
func TestE13(t *testing.T) { checkResult(t, E13Faults(tiny())) }
func TestE14(t *testing.T) { checkResult(t, E14ModelCheck()) }
func TestE15(t *testing.T) { checkResult(t, E15SkipHops(tiny())) }

func TestE11(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel runtime experiment")
	}
	checkResult(t, E11Parallel(Scale{Sizes: []int{8}, Trials: 1, MaxSteps: 1_000_000}))
}

func TestE16(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel runtime experiment")
	}
	checkResult(t, E16Differential(Scale{Sizes: []int{8}, Trials: 1, MaxSteps: 1_000_000}))
}

func TestE6SeriesNonIncreasing(t *testing.T) {
	r := E6Potential(tiny())
	if len(r.Series) == 0 {
		t.Fatal("E6 must produce the Φ decay series")
	}
	if !r.Series[0].NonIncreasing() {
		t.Fatal("Φ decay series must be non-increasing")
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{Quick(), Full()} {
		if len(s.Sizes) == 0 || s.Trials < 1 || s.MaxSteps < 1 {
			t.Fatal("scale misconfigured")
		}
	}
}
