package experiments

import (
	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/diffval"
	"fdp/internal/faults"
	"fdp/internal/metrics"
	"fdp/internal/oracle"
)

// --- E16: differential cross-validation of the two execution engines ----

// E16Differential runs identical scenarios on the sequential simulator and
// the concurrent runtime and demands verdict-level agreement: the paper's
// guarantees (Lemma 2 safety, Lemma 3 liveness, the FSP variant) are
// schedule-independent, so any divergence between the engines is an
// implementation bug, not a model outcome. Scenarios cover FDP and FSP,
// corrupted initial states, and a mid-run transient fault strike.
func E16Differential(s Scale) Result {
	res := Result{
		ID:    "E16",
		Title: "Differential cross-validation: simulator vs concurrent runtime",
		Claim: "safety and liveness verdicts are schedule-independent, so both engines must agree on every seed",
		Pass:  true,
	}
	tb := metrics.NewTable("E16: verdict agreement across execution engines",
		"variant", "strike", "seeds", "agree", "converged", "violations")

	n := s.Sizes[0]
	seeds := 4 * s.Trials
	strike := &faults.Config{FlipBeliefs: 0.5, ScrambleAnchors: 0.5, JunkMessages: 5}
	rows := []struct {
		variant string
		strike  bool
		cfg     diffval.Config
	}{
		{"FDP", false, diffval.Config{Scenario: churn.Config{
			N: n, Topology: churn.TopoRandom, LeaveFraction: 0.4, Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{FlipBeliefs: 0.3, RandomAnchors: 0.3, JunkMessages: 4},
			Variant: core.VariantFDP, Oracle: oracle.Single{},
		}}},
		{"FSP", false, diffval.Config{Scenario: churn.Config{
			N: n, Topology: churn.TopoRandom, LeaveFraction: 0.5, Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{FlipBeliefs: 0.25, JunkMessages: 3},
			Variant: core.VariantFSP,
		}}},
		{"FDP", true, diffval.Config{Scenario: churn.Config{
			N: n, Topology: churn.TopoRandom, LeaveFraction: 0.4, Pattern: churn.LeaveRandom,
			Variant: core.VariantFDP, Oracle: oracle.Single{},
		}, Strike: strike, StrikeAfter: 10 * n}},
	}
	for _, row := range rows {
		vs := diffval.RunSeeds(row.cfg, seeds)
		agree, converged, violations := 0, 0, 0
		for _, v := range vs {
			if v.Agree() {
				agree++
			} else {
				res.Pass = false
			}
			if v.Sequential.Converged && v.Concurrent.Converged {
				converged++
			} else {
				res.Pass = false
			}
			if v.Sequential.SafetyViolated || v.Concurrent.SafetyViolated {
				violations++
				res.Pass = false
			}
		}
		tb.AddRow(row.variant, row.strike, seeds, agree, converged, violations)
	}
	res.Tables = append(res.Tables, tb)
	res.note("expected: agree = converged = seeds and 0 violations in every row")
	return res
}
