package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fdp/internal/baseline"
	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/framework"
	"fdp/internal/graph"
	"fdp/internal/metrics"
	"fdp/internal/oracle"
	"fdp/internal/overlay"
	"fdp/internal/parallel"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// --- E7: Theorem 4 — the framework P' -----------------------------------

// E7Embedding runs the three wrapped overlay protocols under departures and
// corruption, measuring steps until both the FDP legitimacy predicate holds
// and the staying processes form P's target topology.
func E7Embedding(s Scale) Result {
	res := Result{
		ID:    "E7",
		Title: "Embedding into overlay protocols (Theorem 4)",
		Claim: "P' solves the FDP and still solves P's own problem",
		Pass:  true,
	}
	n := s.Sizes[min(1, len(s.Sizes)-1)]
	tb := metrics.NewTable("E7: wrapped overlays under departures (means)",
		"overlay", "n", "converged", "steps", "messages", "verify msgs")
	for _, kind := range []framework.OverlayKind{
		framework.OverlayLinearize, framework.OverlayRing,
		framework.OverlaySkip, framework.OverlayClique,
	} {
		// The clique overlay's P-traffic is Θ(n²) per timeout; run it at a
		// reduced size so the suite stays responsive (noted in the table).
		n := n
		if kind == framework.OverlayClique && n > 10 {
			n = 10
		}
		var steps, msgs, verifies metrics.Sample
		allOK := true
		for trial := 0; trial < s.Trials; trial++ {
			sc := framework.Build(framework.Config{
				N: n, Overlay: kind, LeaveFraction: 0.4,
				Oracle: oracle.Single{}, Seed: int64(trial), ExtraEdges: n / 2,
				CorruptAnchors: 0.3, JunkPending: 4,
			})
			ok, st := runFramework(sc, s.MaxSteps)
			if !ok {
				allOK = false
				res.Pass = false
				continue
			}
			steps.AddInt(sc.World.Steps())
			msgs.AddInt(int(st.Sent))
			verifies.AddInt(int(st.SentByLabel[framework.LabelVerify]))
		}
		tb.AddRow(kind.String(), n, allOK, steps.Mean(), msgs.Mean(), verifies.Mean())
	}
	res.Tables = append(res.Tables, tb)
	res.note("converged means: leavers gone AND staying nodes form P's target topology")
	return res
}

func runFramework(sc *framework.Scenario, maxSteps int) (bool, sim.Stats) {
	variant := sim.FDP
	if sc.Config.Variant == core.VariantFSP {
		variant = sim.FSP
	}
	sched := sim.NewRandomScheduler(sc.Config.Seed+7, 512)
	check := len(sc.Nodes)
	for sc.World.Steps() < maxSteps {
		if sc.World.Steps()%check == 0 {
			if !sc.World.RelevantComponentsIntact() {
				return false, sc.World.Stats()
			}
			if sc.World.Legitimate(variant) && sc.InTarget() {
				return true, sc.World.Stats()
			}
		}
		a, ok := sched.Next(sc.World)
		if !ok {
			break
		}
		sc.World.Execute(a)
	}
	return sc.World.Legitimate(variant) && sc.InTarget(), sc.World.Stats()
}

// --- E8: the FSP variant -------------------------------------------------

// E8FSP runs the sleep variant without any oracle and verifies that all
// leavers end hibernating.
func E8FSP(s Scale) Result {
	res := Result{
		ID:    "E8",
		Title: "Finite Sleep Problem without an oracle (Section 4)",
		Claim: "replacing exit with sleep removes the need for any oracle",
		Pass:  true,
	}
	tb := metrics.NewTable("E8: FSP runs (no oracle, corrupted states, means)",
		"n", "converged", "steps", "hibernating leavers", "gone")
	for _, n := range s.Sizes {
		var steps metrics.Sample
		allOK := true
		hibTotal, leaversTotal, goneTotal := 0, 0, 0
		for trial := 0; trial < s.Trials; trial++ {
			sc := churn.Build(churn.Config{
				N: n, Topology: churn.TopoRandom, LeaveFraction: 0.5,
				Pattern: churn.LeaveRandom, Variant: core.VariantFSP,
				Corrupt: churn.Corruption{FlipBeliefs: 0.3, RandomAnchors: 0.3, JunkMessages: n / 2},
				Seed:    int64(trial) + 11,
			})
			r := sim.Run(sc.World, sim.NewRandomScheduler(int64(trial)+11, 512), sim.RunOptions{
				Variant: sim.FSP, MaxSteps: s.MaxSteps, CheckSafety: true,
			})
			if !r.Converged || r.SafetyViolation != nil {
				allOK = false
				res.Pass = false
				continue
			}
			steps.AddInt(r.Steps)
			hib := sc.World.Hibernating()
			for _, l := range sc.LeavingNodes() {
				leaversTotal++
				if hib.Has(l) {
					hibTotal++
				}
			}
			goneTotal += sc.World.GoneCount()
		}
		tb.AddRow(n, allOK, steps.Mean(), fmt.Sprintf("%d/%d", hibTotal, leaversTotal), goneTotal)
		if goneTotal != 0 || hibTotal != leaversTotal {
			res.Pass = false
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("expected: every leaver hibernating, zero gone (exit unavailable)")
	return res
}

// --- E9: comparison with Foreback et al. [15] ----------------------------

// E9Baseline compares the universal protocol against the sorted-list
// baseline on the baseline's home turf: departures from a clean sorted
// list, and from corrupted states where the baseline's assumptions break.
func E9Baseline(s Scale) Result {
	res := Result{
		ID:    "E9",
		Title: "Universal protocol vs Foreback et al. [15] baseline",
		Claim: "the universal protocol matches the baseline on lists without needing its total order",
		Pass:  true,
	}
	n := s.Sizes[min(1, len(s.Sizes)-1)]
	tb := metrics.NewTable(fmt.Sprintf("E9: departures from a sorted list (n=%d, 30%% leaving, means)", n),
		"protocol", "oracle", "needs key order", "converged", "steps", "messages")

	var uniSteps, uniMsgs metrics.Sample
	uniOK := true
	for trial := 0; trial < s.Trials; trial++ {
		out := runFDP(churn.Config{
			N: n, Topology: churn.TopoLine, LeaveFraction: 0.3,
			Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: int64(trial),
		}, s.MaxSteps)
		if !out.converged || !out.safety {
			uniOK = false
			res.Pass = false
			continue
		}
		uniSteps.AddInt(out.steps)
		uniMsgs.AddInt(int(out.messages))
	}
	tb.AddRow("universal (this paper)", "SINGLE", false, uniOK, uniSteps.Mean(), uniMsgs.Mean())

	var bSteps, bMsgs metrics.Sample
	bOK := true
	for trial := 0; trial < s.Trials; trial++ {
		ok, steps, msgs := runBaselineList(n, 0.3, int64(trial), s.MaxSteps)
		if !ok {
			bOK = false
			res.Pass = false
			continue
		}
		bSteps.AddInt(steps)
		bMsgs.AddInt(int(msgs))
	}
	tb.AddRow("Foreback et al. [15]", "NIDEC", true, bOK, bSteps.Mean(), bMsgs.Mean())
	res.Tables = append(res.Tables, tb)
	res.note("both should converge on the list; the universal protocol additionally works on every topology (E4)")

	// E9b: robustness to arbitrary initial in-flight messages. The baseline
	// trusts depart announcements and deletes references outright, so junk
	// departures can disconnect it; the universal protocol's handlers only
	// move references (four primitives) and cannot.
	tb2 := metrics.NewTable(fmt.Sprintf("E9b: junk in-flight messages in the initial state (n=%d, %d seeds)", n, s.Trials*3),
		"protocol", "runs", "safety violations")
	// Violations surface early; a corrupted baseline run that merely fails
	// to converge is not the measurement here, so a modest budget suffices.
	junkBudget := 300 * n * n
	if junkBudget > s.MaxSteps {
		junkBudget = s.MaxSteps
	}
	uniViol, baseViol := 0, 0
	for trial := 0; trial < s.Trials*3; trial++ {
		out := runFDP(churn.Config{
			N: n, Topology: churn.TopoLine, LeaveFraction: 0.3,
			Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{JunkMessages: 2 * n},
			Oracle:  oracle.Single{}, Seed: int64(trial) + 70,
		}, junkBudget)
		if !out.safety {
			uniViol++
		}
		if baselineJunkViolates(n, int64(trial)+70, junkBudget) {
			baseViol++
		}
	}
	tb2.AddRow("universal (this paper)", s.Trials*3, uniViol)
	tb2.AddRow("Foreback et al. [15]", s.Trials*3, baseViol)
	res.Tables = append(res.Tables, tb2)
	if uniViol > 0 {
		res.Pass = false
	}
	if baseViol == 0 {
		// The contrast is the point: the baseline must be breakable by
		// junk departure announcements, or this row demonstrates nothing.
		res.note("WARNING: no baseline violation observed at this scale")
	}
	res.note("junk depart announcements make the baseline delete load-bearing references; the universal protocol only ever moves them")
	return res
}

// baselineJunkViolates runs the baseline from a clean list plus junk depart
// announcements and reports whether relevant processes got disconnected.
func baselineJunkViolates(n int, seed int64, maxSteps int) bool {
	space := ref.NewSpace()
	nodes := space.NewN(n)
	keys := make(overlay.Keys, n)
	for i, r := range nodes {
		keys[r] = i
	}
	g := graph.Line(nodes)
	w := sim.NewWorld(oracle.NIDEC{})
	procs := make(map[ref.Ref]*baseline.Proc, n)
	rng := newRand(seed)
	leaving := ref.NewSet()
	for _, i := range rng.Perm(n)[:int(0.3*float64(n))] {
		leaving.Add(nodes[i])
	}
	for _, r := range nodes {
		p := baseline.New(keys)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		w.AddProcess(r, mode, p)
	}
	for _, e := range g.Edges() {
		procs[e.From].AddNeighbor(e.To)
	}
	// Junk departure announcements — a perfectly legal "arbitrary initial
	// state". The symmetric pair below claims two adjacent list members are
	// departing from each other with no replacement: each deletes its edge
	// to the other, severing the list. The universal protocol cannot be
	// damaged this way (its handlers only move references); the baseline
	// trusts announcements and deletes.
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 && i+1 < n {
			w.Enqueue(nodes[i], sim.NewMessage(baseline.LabelDepart,
				sim.RefInfo{Ref: nodes[i+1], Mode: sim.Leaving}))
			w.Enqueue(nodes[i+1], sim.NewMessage(baseline.LabelDepart,
				sim.RefInfo{Ref: nodes[i], Mode: sim.Leaving}))
		}
		to := nodes[rng.Intn(n)]
		victim := nodes[rng.Intn(n)]
		rep := nodes[rng.Intn(n)]
		w.Enqueue(to, sim.NewMessage(baseline.LabelDepart,
			sim.RefInfo{Ref: victim, Mode: sim.Leaving},
			sim.RefInfo{Ref: rep, Mode: sim.Unknown}))
	}
	w.SealInitialState()
	r := sim.Run(w, sim.NewRandomScheduler(seed, 512), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: maxSteps, CheckSafety: true,
	})
	return r.SafetyViolation != nil
}

func runBaselineList(n int, frac float64, seed int64, maxSteps int) (bool, int, uint64) {
	space := ref.NewSpace()
	nodes := space.NewN(n)
	keys := make(overlay.Keys, n)
	for i, r := range nodes {
		keys[r] = i
	}
	g := graph.Line(nodes)
	w := sim.NewWorld(oracle.NIDEC{})
	procs := make(map[ref.Ref]*baseline.Proc, n)
	k := int(frac * float64(n))
	leaving := ref.NewSet()
	for i := 0; i < k; i++ {
		leaving.Add(nodes[(i*2+1)%n])
	}
	for _, r := range nodes {
		p := baseline.New(keys)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		w.AddProcess(r, mode, p)
	}
	for _, e := range g.Edges() {
		procs[e.From].AddNeighbor(e.To)
	}
	w.SealInitialState()
	r := sim.Run(w, sim.NewRandomScheduler(seed, 512), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: maxSteps, CheckSafety: true,
	})
	return r.Converged && r.SafetyViolation == nil, r.Steps, r.Stats.Sent
}

// --- E10: oracle ablation -------------------------------------------------

// E10Oracles compares SINGLE against the ideal safety oracle, a timeout
// approximation, and the unsafe constant-true oracle.
func E10Oracles(s Scale) Result {
	res := Result{
		ID:    "E10",
		Title: "Oracle ablation",
		Claim: "SINGLE is sufficient; weaker oracles are unsafe, stronger ones no faster",
		Pass:  true,
	}
	n := s.Sizes[min(1, len(s.Sizes)-1)]
	tb := metrics.NewTable(fmt.Sprintf("E10: oracle comparison (n=%d line, articulation leavers)", n),
		"oracle", "runs", "safety violations", "convergence failures", "mean steps")
	type oracleCase struct {
		name       string
		mk         func() sim.Oracle
		expectSafe bool
	}
	cases := []oracleCase{
		{"SINGLE", func() sim.Oracle { return oracle.Single{} }, true},
		{"EXITSAFE (ideal)", func() sim.Oracle { return oracle.ExitSafe{} }, true},
		{"SINGLE~timeout(5)", func() sim.Oracle { return oracle.NewTimeoutSingle(5) }, true},
		{"TRUE (no oracle guard)", func() sim.Oracle { return oracle.Always(true) }, false},
	}
	for _, c := range cases {
		violations, failures := 0, 0
		var steps metrics.Sample
		trials := s.Trials * 3
		for trial := 0; trial < trials; trial++ {
			sc := churn.Build(churn.Config{
				N: n, Topology: churn.TopoLine, LeaveFraction: 0.4,
				Pattern: churn.LeaveArticulation, Oracle: c.mk(), Seed: int64(trial),
			})
			// Sampled safety checking suffices: a disconnection among
			// relevant processes is permanent (copy-store-send protocols
			// cannot re-invent lost references), so it cannot be missed.
			r := sim.Run(sc.World, sim.NewRandomScheduler(int64(trial), 256), sim.RunOptions{
				Variant: sim.FDP, MaxSteps: s.MaxSteps, CheckSafety: true,
			})
			if r.SafetyViolation != nil {
				violations++
				continue
			}
			if !r.Converged {
				failures++
				continue
			}
			steps.AddInt(r.Steps)
		}
		tb.AddRow(c.name, trials, violations, failures, steps.Mean())
		if c.expectSafe && (violations > 0 || failures > 0) {
			res.Pass = false
		}
		if !c.expectSafe && violations == 0 {
			// The unsafe oracle demonstrates that safety depends on the
			// oracle; zero violations would make that claim vacuous.
			res.Pass = false
		}
	}
	res.Tables = append(res.Tables, tb)
	res.note("TRUE row demonstrates why an oracle is needed at all (impossibility of [15])")
	return res
}

// --- E11: concurrent runtime ----------------------------------------------

// E11Parallel cross-validates the goroutine-per-process runtime and
// measures its event throughput.
func E11Parallel(s Scale) Result {
	res := Result{
		ID:    "E11",
		Title: "Concurrent runtime cross-validation and throughput",
		Claim: "the protocol converges under true parallel asynchrony (goroutine per process)",
		Pass:  true,
	}
	tb := metrics.NewTable("E11: goroutine-per-process runs (50% leaving, random topology)",
		"n", "converged", "exits ok", "events executed", "events/sec")
	for _, n := range s.Sizes {
		rt, leavingCount := buildParallel(n, int64(n), oracle.Single{})
		start := time.Now()
		ok := rt.RunUntil(func(w *sim.World) bool {
			return w.Legitimate(sim.FDP)
		}, 2*time.Millisecond, 60*time.Second)
		elapsed := time.Since(start).Seconds()
		if !ok {
			res.Pass = false
		}
		exitsOK := rt.Gone() == uint64(leavingCount)
		if !exitsOK {
			res.Pass = false
		}
		rate := float64(rt.Events()) / elapsed
		tb.AddRow(n, ok, exitsOK, rt.Events(), rate)
	}
	res.Tables = append(res.Tables, tb)
	res.note("throughput is events (atomic actions) per wall-clock second across all cores")
	return res
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func buildParallel(n int, seed int64, orc parallel.Oracle) (*parallel.Runtime, int) {
	space := ref.NewSpace()
	nodes := space.NewN(n)
	rngGraph := graph.RandomConnected(nodes, n/2, newRand(seed))
	leaving := ref.NewSet()
	perm := newRand(seed + 1).Perm(n)
	for _, i := range perm[:n/2] {
		leaving.Add(nodes[i])
	}
	rt := parallel.NewRuntime(orc)
	procs := make(map[ref.Ref]*core.Proc, n)
	for _, r := range nodes {
		p := core.New(core.VariantFDP)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		rt.AddProcess(r, mode, p)
	}
	for _, e := range rngGraph.Edges() {
		mode := sim.Staying
		if leaving.Has(e.To) {
			mode = sim.Leaving
		}
		procs[e.From].SetNeighbor(e.To, mode)
	}
	return rt, leaving.Len()
}
