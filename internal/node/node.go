// Package node runs one node of a multi-node churn run: a slice of the
// global scenario driven by the sequential engine, stitched to its siblings
// by a transport (DESIGN.md §15).
//
// Deployment is coordinator-free. Every node rebuilds the identical global
// scenario from the shared recipe (churn.TryBuild is a pure function of the
// config, and trace.Scenario serializes the config), keeps only the
// processes it owns — ownership is round-robin by process index — and wires
// its engine's router hook to the transport: a send whose target lives
// elsewhere leaves as a wire frame, arrives at the owner, and is injected
// with its causal identity intact. Each node seeds its causal counter into
// a disjoint namespace (trace.NodeCausalBase), so the per-node journals
// join into one happens-before order (trace.Join).
//
// The oracle is the distributed SINGLE of oracle.go: exit permissions are
// granted per leaver by its owner from consistent-round global snapshots
// and revoked on any fresh relevant traffic. Termination is gossiped: a
// node whose owned leavers are all gone says so, rebroadcasting until every
// node agrees; then each node drains stragglers for a linger period (late
// frames still inject or bounce — exits must not corrupt staying processes'
// final state) and writes its summary.
package node

import (
	"fmt"
	"io"
	"time"

	"fdp/internal/churn"
	"fdp/internal/obs"
	"fdp/internal/ref"
	"fdp/internal/sim"
	"fdp/internal/trace"
	"fdp/internal/transport"
)

// Config describes one node's slice of a multi-node run.
type Config struct {
	// ID is this node's id, in [0, Nodes); Nodes the total count.
	ID, Nodes int
	// Scenario is the shared global recipe. Every node must receive the
	// exact same value — the run's correctness rests on all nodes
	// rebuilding the same world.
	Scenario trace.Scenario
	// Journal, if non-nil, receives this node's journal (engine "node").
	// The node flushes it at every wind-down and on Interrupt.
	Journal io.Writer

	// MaxWall bounds the run in wall time (default 60s); a node that hits
	// it reports TimedOut. Linger is the post-agreement drain window
	// (default 500ms). StepBatch is how many local actions run per pump
	// iteration (default 64). RoundEvery is the owner's oracle round
	// interval and DoneEvery the done-gossip rebroadcast interval
	// (defaults 50ms and 200ms).
	MaxWall    time.Duration
	Linger     time.Duration
	StepBatch  int
	RoundEvery time.Duration
	DoneEvery  time.Duration

	// Metrics, if non-nil, receives this node's liveness series
	// (fdp_progress_* / fdp_stall_*, labeled node="<id>"). Pass the same
	// registry to transport.TCPConfig.Metrics for one /metrics view
	// combining per-link transport and per-leaver progress (cmd/fdpnode
	// -serve does).
	Metrics *obs.Registry
	// StallWindow enables the wall-clock liveness watchdog on the pump
	// loop: every window with owned leavers remaining and no settles is
	// classified (obs.StallKind). Pick it well above RoundEvery — a grant
	// takes at least one oracle round. 0 disables.
	StallWindow time.Duration
	// FlightK bounds the always-on flight recorder (0 =
	// trace.DefaultFlightCap). The recorder runs whenever Metrics,
	// StallWindow or OnStall is set.
	FlightK int
	// OnStall, if non-nil, receives the FIRST stall verdict together with
	// the flight-recorder snapshot framed as an engine-"node" journal
	// fragment (joinable with the siblings' journals). Called on the pump
	// goroutine; cmd/fdpnode writes the artifacts next to the journal.
	OnStall func(v obs.StallVerdict, hdr trace.Header, flight []trace.Record, complete bool)
}

// inKind discriminates inbox entries.
type inKind uint8

const (
	inData inKind = iota
	inBounce
	inLocalBounce
	inControl
)

type inbound struct {
	kind    inKind
	from    transport.NodeID
	to      ref.Ref
	msg     sim.Message
	payload []byte
}

// Node is one running slice. It implements transport.Handler; handler
// calls enqueue into the inbox and everything else happens on the single
// pump goroutine inside Run — the engine, the journal hook, the oracle
// state and the summary never see concurrency.
type Node struct {
	cfg    Config
	global *churn.Scenario
	world  *sim.World
	sched  sim.Scheduler
	jw     *trace.StreamWriter
	orc    *distOracle
	tr     transport.Transport

	owned      []ref.Ref // sorted
	ownedSet   ref.Set
	ownedLeave []ref.Ref // owned leavers, sorted

	// inbox carries handler calls to the pump. A full inbox blocks the
	// transport's reader — backpressure all the way to the sending peer's
	// TCP link. dead closes when Run returns, unblocking handlers so the
	// transport can drain and close after the pump is gone.
	inbox chan inbound
	dead  chan struct{}

	// Exactly-once injection state, per source node. Data frames from node
	// j carry CIDs stamped by j's world counter, so they arrive in
	// increasing CID order per link and a high watermark recognizes
	// transport retransmits (redial after a torn write, chaos duplication).
	// Bounce frames echo arbitrary foreign CIDs, so they get a seen-set;
	// bounces are rare, the set stays small.
	hiCID      []uint64
	seenBounce []map[uint64]bool

	doneNodes []bool
	steps     int

	// Liveness observability (DESIGN.md §16), pump-goroutine only.
	prog      *obs.Progress
	flight    *trace.Flight
	wd        *obs.Watchdog
	stallKind string
	stallStep int
}

// New rebuilds the global scenario and prepares this node's world. The
// transport is attached in Run so that New can be used as the
// transport.Handler during transport construction.
func New(cfg Config) (*Node, error) {
	if cfg.Nodes < 1 || cfg.ID < 0 || cfg.ID >= cfg.Nodes {
		return nil, fmt.Errorf("node: id %d out of range for %d nodes", cfg.ID, cfg.Nodes)
	}
	if cfg.MaxWall <= 0 {
		cfg.MaxWall = 60 * time.Second
	}
	if cfg.Linger <= 0 {
		cfg.Linger = 500 * time.Millisecond
	}
	if cfg.StepBatch <= 0 {
		cfg.StepBatch = 64
	}
	if cfg.RoundEvery <= 0 {
		cfg.RoundEvery = 50 * time.Millisecond
	}
	if cfg.DoneEvery <= 0 {
		cfg.DoneEvery = 200 * time.Millisecond
	}
	ccfg, err := cfg.Scenario.ChurnConfig()
	if err != nil {
		return nil, err
	}
	global, err := churn.TryBuild(ccfg)
	if err != nil {
		return nil, err
	}

	n := &Node{cfg: cfg, global: global,
		ownedSet:   ref.NewSet(),
		inbox:      make(chan inbound, 1<<16),
		dead:       make(chan struct{}),
		hiCID:      make([]uint64, cfg.Nodes),
		seenBounce: make([]map[uint64]bool, cfg.Nodes),
		doneNodes:  make([]bool, cfg.Nodes),
	}
	for _, r := range global.Nodes {
		if n.ownerOf(r) == cfg.ID {
			n.owned = append(n.owned, r)
			n.ownedSet.Add(r)
		}
	}
	ref.Sort(n.owned)

	n.orc = newDistOracle(n)
	w := sim.NewWorld(n.orc)
	for _, r := range n.owned {
		w.AddProcess(r, global.World.ModeOf(r), global.World.ProtocolOf(r))
		if global.World.LifeOf(r) == sim.Asleep {
			w.ForceAsleep(r)
		}
		if global.Leaving.Has(r) {
			n.ownedLeave = append(n.ownedLeave, r)
		}
	}
	// The builder's initial in-flight messages keep their small CIDs
	// (Inject preserves them; Enqueue would restamp), so journal joins can
	// recognize them as owner-injected.
	for _, r := range n.owned {
		for _, m := range global.World.ChannelSnapshot(r) {
			w.Inject(r, m)
		}
	}
	w.SeedCausal(trace.NodeCausalBase(cfg.ID))
	w.SetRouter(n.route)
	w.SealInitialState()
	if cfg.Journal != nil {
		n.jw = trace.NewStreamWriter(cfg.Journal, trace.Header{
			Version: trace.Version, Engine: trace.EngineNode,
			Scenario: cfg.Scenario, Node: cfg.ID, Nodes: cfg.Nodes,
		})
		w.AddEventHook(n.jw.Record)
	}
	if cfg.Metrics != nil || cfg.StallWindow > 0 || cfg.OnStall != nil {
		// One Progress per node, its series labeled with the node id so a
		// scrape across the cluster tells slices apart. The flight recorder
		// mirrors the journal hook: same events, bounded ring instead of a
		// stream, snapshot only on stall.
		n.prog = obs.NewProgress(cfg.Metrics, fmt.Sprintf("node=%q", fmt.Sprint(cfg.ID)), n.ownedLeave)
		n.flight = trace.NewFlight(cfg.FlightK)
		w.AddEventHook(n.flight.Record)
		w.AddEventHook(n.prog.NoteEvent)
		w.SetOracleHook(n.prog.NoteOracle)
		if cfg.StallWindow > 0 {
			n.wd = obs.NewWatchdog(n.prog, cfg.StallWindow)
		}
	}
	n.world = w
	// Distinct per-node seeds: each node schedules its own slice; the run
	// is one concurrent schedule, not a replayable one.
	n.sched = sim.NewRandomScheduler(cfg.Scenario.Seed+int64(cfg.ID)*7919+1, 0)
	return n, nil
}

// ownerOf is the global ownership function: round-robin by process index.
func (n *Node) ownerOf(r ref.Ref) int { return ref.Index(r) % n.cfg.Nodes }

// enqueue hands one inbound entry to the pump. It blocks on a full inbox
// while the pump lives (backpressure to the peer) and discards once the pump
// has exited — late frames after the summary have nowhere to go, and a
// blocked handler would wedge the transport's reader forever on Close.
func (n *Node) enqueue(in inbound) {
	select {
	case n.inbox <- in:
	case <-n.dead:
	}
}

// HandleDeliver implements transport.Handler.
func (n *Node) HandleDeliver(from transport.NodeID, to ref.Ref, msg sim.Message) {
	n.enqueue(inbound{kind: inData, from: from, to: to, msg: msg})
}

// HandleBounce implements transport.Handler.
func (n *Node) HandleBounce(from transport.NodeID, to ref.Ref, msg sim.Message) {
	k := inBounce
	if from == transport.LocalBounce {
		k = inLocalBounce
	}
	n.enqueue(inbound{kind: k, from: from, to: to, msg: msg})
}

// HandleControl implements transport.Handler.
func (n *Node) HandleControl(from transport.NodeID, payload []byte) {
	n.enqueue(inbound{kind: inControl, from: from, payload: append([]byte(nil), payload...)})
}

// route is the engine's outbound hook, run inside the sending process's
// atomic action on the pump goroutine.
func (n *Node) route(to ref.Ref, msg sim.Message) bool {
	owner := n.ownerOf(to)
	if owner == n.cfg.ID {
		// Ours but unknown or gone: the model's drop path handles it.
		return false
	}
	if !n.tr.Send(transport.NodeID(owner), to, msg) {
		return false
	}
	n.orc.noteSent(owner, to, msg)
	return true
}

// Result is what one node reports at the end of its run.
type Result struct {
	Summary Summary
	// Converged is the local view of the global outcome: every node
	// gossiped done, and every owned leaver is gone.
	Converged bool
}

// Run drives the node until every node gossips done, the stop channel
// closes, or MaxWall elapses. It owns the pump goroutine; tr's handler must
// be this node.
func (n *Node) Run(tr transport.Transport, stop <-chan struct{}) Result {
	n.tr = tr
	defer close(n.dead)
	deadline := time.Now().Add(n.cfg.MaxWall)
	var lastRound, lastDone time.Time
	interrupted, timedOut := false, false

	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	for {
		if stopped() {
			interrupted = true
			break
		}
		if time.Now().After(deadline) {
			timedOut = true
			break
		}
		absorbed := n.drainInbox()
		drained := absorbed > 0

		// Step a batch of local actions, scaled to what the drain just
		// injected: every inbound frame needs a local delivery step to
		// consume it, so a fixed batch would let a flooding sibling starve
		// this engine — the queue grows and owned leavers stop making
		// progress.
		for i := 0; i < n.cfg.StepBatch+absorbed; i++ {
			a, ok := n.sched.Next(n.world)
			if !ok {
				break
			}
			n.world.Execute(a)
			n.steps++
		}

		now := time.Now()
		// Open a round when due; an open round is left to gather answers
		// and only declared lost (and restarted) after a generous multiple
		// of the interval.
		roundDue := now.Sub(lastRound) >= n.cfg.RoundEvery
		if n.orc.roundOpen() {
			roundDue = now.Sub(lastRound) >= 20*n.cfg.RoundEvery
		}
		if n.orc.ownsLive() && roundDue {
			lastRound = now
			n.orc.startRound()
		}
		if n.localDone() && now.Sub(lastDone) >= n.cfg.DoneEvery {
			lastDone = now
			n.doneNodes[n.cfg.ID] = true
			n.broadcastDone()
		}
		if n.allDone() {
			break
		}
		n.checkStall()
		if !drained && n.world.Stats().TotalInQueue == 0 {
			// Nothing arrived and no local deliveries are pending: any steps
			// the batch above ran were pure timeout spinning. The
			// asynchronous model is indifferent to timeout rates, so pace
			// them instead of flooding the siblings with periodic
			// self-introductions at CPU speed — and don't hog the core they
			// share on a single-host deployment.
			time.Sleep(time.Millisecond)
		}
	}

	if !interrupted && !timedOut {
		n.linger(stop, &interrupted)
	}
	sum := n.buildSummary(interrupted, timedOut)
	if n.jw != nil {
		n.jw.Flush()
	}
	return Result{Summary: sum, Converged: !interrupted && !timedOut && n.allDone() && n.localDone()}
}

// inboxBatch bounds how many inbox entries one pump iteration absorbs. The
// bound matters: siblings spinning timeout actions can keep the inbox
// non-empty indefinitely, and an unbounded drain would starve the local
// engine outright — injected messages would pile up in channels no step
// ever delivers.
const inboxBatch = 1024

// drainInbox processes up to inboxBatch queued entries without blocking and
// returns how many it processed.
func (n *Node) drainInbox() int {
	for i := 0; i < inboxBatch; i++ {
		select {
		case in := <-n.inbox:
			n.dispatch(in)
		default:
			return i
		}
	}
	return inboxBatch
}

func (n *Node) dispatch(in inbound) {
	switch in.kind {
	case inData:
		// Exactly-once injection: a frame at or below the source's CID
		// watermark is a transport retransmit already processed here. Drop
		// it before any accounting — the sender counted it once, so must
		// we, or the oracle's matrix never balances again.
		if cid := in.msg.CID(); cid != 0 {
			if cid <= n.hiCID[in.from] {
				return
			}
			n.hiCID[in.from] = cid
		}
		// Count before injecting: a fresh relevant frame revokes its
		// leaver's grant before the message can reach a channel, closing
		// the grant-vs-late-arrival race for owned leavers.
		n.orc.noteRecv(int(in.from), in.to, in.msg)
		if !n.world.Inject(in.to, in.msg) {
			// Target unknown or gone here: return it. The bounce frame is
			// relevant traffic too — it keeps the matrix unbalanced until
			// the origin has absorbed the failure.
			if n.tr.SendBounce(in.from, in.to, in.msg) {
				n.orc.noteSent(int(in.from), in.to, in.msg)
			}
		}
	case inBounce:
		// Bounced messages echo the original (foreign-namespace) CID, so
		// retransmit detection uses a seen-set instead of the watermark.
		if cid := in.msg.CID(); cid != 0 {
			if n.seenBounce[in.from] == nil {
				n.seenBounce[in.from] = make(map[uint64]bool)
			}
			if n.seenBounce[in.from][cid] {
				return
			}
			n.seenBounce[in.from][cid] = true
		}
		n.orc.noteRecv(int(in.from), in.to, in.msg)
		n.world.Bounce(in.msg.From(), in.to, in.msg)
	case inLocalBounce:
		// The transport gave up on the link: the data frame never arrived
		// anywhere, so undo its send count.
		n.orc.noteUnsent(n.ownerOf(in.to), in.to, in.msg)
		n.world.Bounce(in.msg.From(), in.to, in.msg)
	case inControl:
		n.orc.handleControl(int(in.from), in.payload)
	}
}

// checkStall ticks the liveness watchdog (no-op unless StallWindow is set;
// cheap until a window elapses). The first stall is recorded in the summary
// and handed to OnStall with the flight snapshot; later verdicts only keep
// the fdp_stall_* series current.
func (n *Node) checkStall() {
	if n.wd == nil {
		return
	}
	// Pending = undelivered local messages plus frames parked in the inbox.
	// Stats() copies a map, so the closure runs only at window boundaries.
	v, stalled := n.wd.Tick(uint64(n.steps), func() int {
		return n.world.Stats().TotalInQueue + len(n.inbox)
	})
	if !stalled || n.stallKind != "" {
		return
	}
	n.stallKind = v.Kind.String()
	n.stallStep = n.steps
	if n.cfg.OnStall != nil {
		recs, complete := n.flight.Snapshot()
		n.cfg.OnStall(v, trace.Header{
			Version: trace.Version, Engine: trace.EngineNode,
			Scenario: n.cfg.Scenario, Node: n.cfg.ID, Nodes: n.cfg.Nodes,
		}, recs, complete)
	}
}

// localDone reports whether every owned leaver is gone.
func (n *Node) localDone() bool {
	for _, u := range n.ownedLeave {
		if n.world.LifeOf(u) != sim.Gone {
			return false
		}
	}
	return true
}

func (n *Node) allDone() bool {
	for _, d := range n.doneNodes {
		if !d {
			return false
		}
	}
	return true
}

func (n *Node) broadcastDone() {
	n.tr.BroadcastControl(marshalCtl(ctlMsg{K: "done", N: n.cfg.ID}))
}

// linger keeps absorbing late frames after global agreement: an exit on a
// fast node can still bounce a slower node's in-flight message, and that
// bounce must reach the sender's protocol before the final state is
// summarized — otherwise staying processes would be frozen holding
// references the run already invalidated.
func (n *Node) linger(stop <-chan struct{}, interrupted *bool) {
	deadline := time.Now().Add(n.cfg.Linger)
	for time.Now().Before(deadline) {
		select {
		case <-stop:
			*interrupted = true
			return
		default:
		}
		if n.drainInbox() == 0 {
			time.Sleep(time.Millisecond)
		}
		// Bounced deliveries may have woken protocols; let them settle.
		for i := 0; i < n.cfg.StepBatch; i++ {
			a, ok := n.sched.Next(n.world)
			if !ok {
				break
			}
			n.world.Execute(a)
			n.steps++
		}
	}
}

// Journal returns the node's stream writer (nil without a journal).
func (n *Node) Journal() *trace.StreamWriter { return n.jw }

// Interrupt flushes the journal from a signal handler context. Safe to call
// concurrently with the pump; the stream writer is a leaf.
func (n *Node) Interrupt() {
	if n.jw != nil {
		n.jw.Flush()
	}
}
