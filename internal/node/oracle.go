package node

import (
	"encoding/json"

	"fdp/internal/ref"
	"fdp/internal/sim"
	"fdp/internal/transport"
)

// distOracle is the distributed SINGLE oracle. The sequential Single grants
// u an exit iff u has PG edges — explicit (stored references) or implicit
// (references carried by queued messages) — with at most one other relevant
// process, evaluated atomically inside u's action. No node of a multi-node
// run sees PG whole, so the owner of each leaver u reconstructs the same
// predicate from consistent global snapshots:
//
//   1. Every node counts, per leaver u and per link, the u-relevant frames
//      (data and bounce frames addressed to u or carrying u's reference) it
//      has sent and received. A transport-synthesized bounce undoes its
//      frame's send count — the frame never arrived anywhere.
//   2. The owner runs numbered rounds: it broadcasts oq naming its live
//      owned leavers; every node answers oa with its counters and its local
//      neighbor contribution for each u (live owned processes storing u's
//      reference or holding queued messages that mention u, plus — on u's
//      own node — u's stored references and the references queued in u's
//      channel, minus processes known to be gone).
//   3. When all nodes have answered a round, u is granted iff the send/
//      receive matrix balances (sent[j→k] == recv[k←j] for every ordered
//      pair — no u-relevant frame was in flight anywhere) and the union of
//      neighbor contributions minus u has at most one member.
//   4. Any later u-relevant frame observed at the owner revokes the grant,
//      and a round during which the owner observed such a frame grants
//      nothing. Frames addressed to u necessarily pass through its owner,
//      so a message racing the exit revokes the grant before it can reach
//      u's channel.
//
// What this does NOT close — honestly — is third-party traffic: node j can
// ship a frame mentioning u to node k after answering the round that grants
// u. Such a frame cannot reach u's channel without revoking the grant
// first; its effect is a reference to (by then gone) u held elsewhere,
// which is exactly the post-exit interleaving the sequential model already
// permits, handled by the undeliverable/bounce recovery path. See
// DESIGN.md §15 for the argument.
//
// All state is touched only on the node's pump goroutine; Evaluate reads a
// plain map because the engine runs on that same goroutine.
type distOracle struct {
	n *Node

	// leaverIdx marks the global leaver indexes (relevance filter).
	leaverIdx map[int]bool
	// sent[u][k] and recv[u][k] count u-relevant frames exchanged with
	// node k, cumulative over the run.
	sent, recv map[int][]uint64
	// ver[u] counts owner-observed u-relevant traffic; a grant requires an
	// undisturbed round (ver unchanged since the round opened).
	ver map[int]uint64

	// granted holds current exit permissions for owned leavers.
	granted map[ref.Ref]bool

	// Round state (owner side).
	round    uint64
	roundUs  []int
	roundVer map[int]uint64
	answers  map[int][]ctlAnswer // responding node → per-leaver answers
}

func newDistOracle(n *Node) *distOracle {
	o := &distOracle{n: n,
		leaverIdx: make(map[int]bool),
		sent:      make(map[int][]uint64),
		recv:      make(map[int][]uint64),
		ver:       make(map[int]uint64),
		granted:   make(map[ref.Ref]bool),
	}
	for _, u := range n.global.Leaving.Sorted() {
		o.leaverIdx[ref.Index(u)] = true
	}
	return o
}

// Name implements sim.Oracle.
func (o *distOracle) Name() string { return "SINGLE" }

// Evaluate implements sim.Oracle: the current grant for u, revocable until
// the moment the exit action reads it.
func (o *distOracle) Evaluate(_ *sim.World, u ref.Ref) bool { return o.granted[u] }

// relevant returns the leaver indexes a frame matters to: its target and
// every leaver whose reference it carries.
func (o *distOracle) relevant(to ref.Ref, msg sim.Message) []int {
	var us []int
	if i := ref.Index(to); o.leaverIdx[i] {
		us = append(us, i)
	}
	for _, ri := range msg.Refs {
		if i := ref.Index(ri.Ref); o.leaverIdx[i] {
			dup := false
			for _, x := range us {
				dup = dup || x == i
			}
			if !dup {
				us = append(us, i)
			}
		}
	}
	return us
}

func (o *distOracle) counters(m map[int][]uint64, u int) []uint64 {
	c := m[u]
	if c == nil {
		c = make([]uint64, o.n.cfg.Nodes)
		m[u] = c
	}
	return c
}

func (o *distOracle) disturb(u int) {
	o.ver[u]++
	if r := ref.ByIndex(u); o.n.ownedSet.Has(r) {
		delete(o.granted, r)
	}
}

// noteSent records a u-relevant frame handed to the transport for peer k.
func (o *distOracle) noteSent(k int, to ref.Ref, msg sim.Message) {
	for _, u := range o.relevant(to, msg) {
		o.counters(o.sent, u)[k]++
		o.disturb(u)
	}
}

// noteUnsent undoes noteSent after the transport reported the frame dead on
// the wire (local bounce): it never arrived, so it must not be waited for.
func (o *distOracle) noteUnsent(k int, to ref.Ref, msg sim.Message) {
	for _, u := range o.relevant(to, msg) {
		if c := o.counters(o.sent, u); c[k] > 0 {
			c[k]--
		}
		o.disturb(u)
	}
}

// noteRecv records a u-relevant frame arriving from peer k.
func (o *distOracle) noteRecv(k int, to ref.Ref, msg sim.Message) {
	for _, u := range o.relevant(to, msg) {
		o.counters(o.recv, u)[k]++
		o.disturb(u)
	}
}

// roundOpen reports whether a round is awaiting answers. The pump keeps an
// open round alive well past RoundEvery — restarting a round that merely
// needs another pump cycle to gather its answers would starve grants.
func (o *distOracle) roundOpen() bool { return o.answers != nil }

// ownsLive reports whether this node owns any not-yet-gone leaver (i.e.
// whether it has rounds to run).
func (o *distOracle) ownsLive() bool {
	for _, u := range o.n.ownedLeave {
		if o.n.world.LifeOf(u) != sim.Gone {
			return true
		}
	}
	return false
}

// startRound opens a new round for the owned live leavers: broadcast the
// query, record our own answer and the disturbance versions the grant will
// be conditioned on.
func (o *distOracle) startRound() {
	o.round++
	o.roundUs = o.roundUs[:0]
	for _, u := range o.n.ownedLeave {
		if o.n.world.LifeOf(u) != sim.Gone {
			o.roundUs = append(o.roundUs, ref.Index(u))
		}
	}
	if len(o.roundUs) == 0 {
		return
	}
	o.roundVer = make(map[int]uint64, len(o.roundUs))
	for _, u := range o.roundUs {
		o.roundVer[u] = o.ver[u]
	}
	o.answers = map[int][]ctlAnswer{o.n.cfg.ID: o.answerFor(o.roundUs)}
	q := marshalCtl(ctlMsg{K: "oq", R: o.round, N: o.n.cfg.ID, U: o.roundUs})
	o.n.tr.BroadcastControl(q)
	o.maybeGrant() // single-node runs complete immediately
}

// answerFor builds this node's answers for the queried leavers.
func (o *distOracle) answerFor(us []int) []ctlAnswer {
	out := make([]ctlAnswer, 0, len(us))
	for _, u := range us {
		a := ctlAnswer{U: u,
			Sent: append([]uint64(nil), o.counters(o.sent, u)...),
			Recv: append([]uint64(nil), o.counters(o.recv, u)...),
			Nb:   o.contribution(u),
		}
		out = append(out, a)
	}
	return out
}

// contribution computes this node's slice of u's PG neighborhood: for each
// live owned process v, an explicit edge if v stores u's reference and an
// implicit one if a message queued at v mentions u; on u's own node also
// u's stored references and the references carried by u's queued messages.
// Processes known gone here are excluded; remote references are kept
// conservatively (their owners cannot be consulted atomically — a stale
// inclusion only delays a grant, never unsafely issues one).
func (o *distOracle) contribution(uIdx int) []int {
	u := ref.ByIndex(uIdx)
	nb := make(map[int]bool)
	add := func(r ref.Ref) {
		i := ref.Index(r)
		if i == uIdx {
			return
		}
		if o.n.ownedSet.Has(r) && o.n.world.LifeOf(r) == sim.Gone {
			return
		}
		nb[i] = true
	}
	for _, v := range o.n.owned {
		if o.n.world.LifeOf(v) == sim.Gone {
			continue
		}
		if v == u {
			for _, w := range o.n.world.ProtocolOf(u).Refs() {
				add(w)
			}
			for _, m := range o.n.world.ChannelSnapshot(u) {
				for _, ri := range m.Refs {
					add(ri.Ref)
				}
			}
			continue
		}
		stores := false
		for _, w := range o.n.world.ProtocolOf(v).Refs() {
			if w == u {
				stores = true
			}
		}
		if !stores {
		scan:
			for _, m := range o.n.world.ChannelSnapshot(v) {
				for _, ri := range m.Refs {
					if ri.Ref == u {
						stores = true
						break scan
					}
				}
			}
		}
		if stores {
			nb[ref.Index(v)] = true
		}
	}
	out := make([]int, 0, len(nb))
	for i := range nb {
		out = append(out, i)
	}
	// Deterministic order for the wire (and for test stability).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// handleControl processes one control payload on the pump goroutine.
func (o *distOracle) handleControl(from int, payload []byte) {
	var m ctlMsg
	if err := json.Unmarshal(payload, &m); err != nil {
		return // garbled control traffic is dropped, rounds retry
	}
	switch m.K {
	case "oq":
		a := marshalCtl(ctlMsg{K: "oa", R: m.R, N: o.n.cfg.ID, A: o.answerFor(m.U)})
		o.n.tr.SendControl(transport.NodeID(from), a)
	case "oa":
		if m.R != o.round || o.answers == nil {
			return // stale round
		}
		o.answers[m.N] = m.A
		o.maybeGrant()
	case "done":
		if m.N >= 0 && m.N < len(o.n.doneNodes) {
			o.n.doneNodes[m.N] = true
		}
	}
}

// maybeGrant evaluates the open round once every node has answered.
func (o *distOracle) maybeGrant() {
	if len(o.answers) != o.n.cfg.Nodes {
		return
	}
	byNode := make([]map[int]ctlAnswer, o.n.cfg.Nodes)
	for k, as := range o.answers {
		byNode[k] = make(map[int]ctlAnswer, len(as))
		for _, a := range as {
			byNode[k][a.U] = a
		}
	}
	for _, u := range o.roundUs {
		r := ref.ByIndex(u)
		if o.n.world.LifeOf(r) == sim.Gone {
			continue
		}
		if o.ver[u] != o.roundVer[u] {
			continue // disturbed mid-round; the next round retries
		}
		ok := true
		nb := make(map[int]bool)
		for j := 0; j < o.n.cfg.Nodes && ok; j++ {
			aj, have := byNode[j][u]
			if !have || len(aj.Sent) != o.n.cfg.Nodes || len(aj.Recv) != o.n.cfg.Nodes {
				ok = false
				break
			}
			for _, i := range aj.Nb {
				nb[i] = true
			}
			for k := 0; k < o.n.cfg.Nodes; k++ {
				ak, have := byNode[k][u]
				if !have || len(ak.Recv) != o.n.cfg.Nodes {
					ok = false
					break
				}
				if aj.Sent[k] != ak.Recv[j] {
					ok = false // a u-relevant frame is in flight
					break
				}
			}
		}
		delete(nb, u)
		if ok && len(nb) <= 1 {
			o.granted[r] = true
		} else {
			delete(o.granted, r)
		}
	}
	o.answers = nil // round closed
}

// ctlMsg is the node layer's control vocabulary, shipped as JSON inside
// control frames: oracle queries (oq), answers (oa) and done gossip.
type ctlMsg struct {
	K string      `json:"k"`
	R uint64      `json:"r,omitempty"`
	N int         `json:"n"`
	U []int       `json:"u,omitempty"`
	A []ctlAnswer `json:"a,omitempty"`
}

// ctlAnswer is one node's per-leaver round answer.
type ctlAnswer struct {
	U    int      `json:"u"`
	Sent []uint64 `json:"s"`
	Recv []uint64 `json:"r"`
	Nb   []int    `json:"nb,omitempty"`
}

func marshalCtl(m ctlMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("node: control message marshal failed: " + err.Error())
	}
	return b
}
