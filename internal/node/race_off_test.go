//go:build !race

package node

// raceEnabled reports whether the race detector is compiled in; mesh tests
// scale their scenarios and wall budgets down/up accordingly.
const raceEnabled = false
