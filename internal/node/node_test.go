package node

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"fdp/internal/sim"
	"fdp/internal/trace"
	"fdp/internal/transport"
)

func testScenario(n int, seed int64) trace.Scenario {
	return trace.Scenario{N: n, Topology: "line", LeaveFraction: 0.4,
		Pattern: "random", Variant: "FDP", Oracle: "SINGLE", Seed: seed}
}

// meshTiming returns (MaxWall, RoundEvery) for mesh tests. Under the race
// detector the wall budget is a coverage window, not a convergence
// deadline: a grant needs an undisturbed round — a quiet window with no
// u-relevant frame in flight anywhere — and the detector's ~20x slowdown
// on a shared core stretches round trips until such windows all but vanish
// for flood-heavy scenarios. Liveness is therefore asserted without the
// detector only; race builds run the full mesh for instrumentation
// coverage and hold it to its safety properties.
func meshTiming() (time.Duration, time.Duration) {
	if raceEnabled {
		return 15 * time.Second, 10 * time.Millisecond
	}
	return 30 * time.Second, 2 * time.Millisecond
}

// runMesh runs a full multi-node churn over an in-process loopback and
// returns everything the merge step consumes.
func runMesh(t *testing.T, scn trace.Scenario, nn int,
	tune func(*transport.Loopback)) ([]Result, []trace.Header, [][]trace.Record, []Summary) {
	t.Helper()
	mesh := transport.NewLoopback()
	ns := make([]*Node, nn)
	bufs := make([]*bytes.Buffer, nn)
	ports := make([]*transport.Port, nn)
	maxWall, roundEvery := meshTiming()
	for i := 0; i < nn; i++ {
		bufs[i] = &bytes.Buffer{}
		n, err := New(Config{ID: i, Nodes: nn, Scenario: scn, Journal: bufs[i],
			MaxWall: maxWall, Linger: 150 * time.Millisecond,
			RoundEvery: roundEvery, DoneEvery: 10 * time.Millisecond})
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		ports[i] = mesh.Attach(n)
		ns[i] = n
	}
	if tune != nil {
		tune(mesh)
	}
	results := make([]Result, nn)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range ns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = ns[i].Run(ports[i], stop)
		}(i)
	}
	wg.Wait()

	hdrs := make([]trace.Header, nn)
	parts := make([][]trace.Record, nn)
	sums := make([]Summary, nn)
	for i := 0; i < nn; i++ {
		h, recs, err := trace.ReadJournal(bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatalf("journal %d: %v", i, err)
		}
		hdrs[i], parts[i], sums[i] = h, recs, results[i].Summary
	}
	return results, hdrs, parts, sums
}

func TestThreeNodeLoopbackMatchesSequentialVerdict(t *testing.T) {
	scn := testScenario(12, 42)

	// The same scenario must converge on the sequential engine — the
	// multi-node run is checked against the same verdict, not a weaker one.
	seq, err := scn.BuildScenario()
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(seq.World, sim.NewRandomScheduler(scn.Seed, 0), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 200000, CheckSafety: true})
	if !res.Converged || res.SafetyViolation != nil {
		t.Fatalf("sequential reference run did not converge: %+v", res)
	}

	results, hdrs, parts, sums := runMesh(t, scn, 3, nil)
	v, err := Verify(hdrs, parts, sums)
	if err != nil {
		t.Fatal(err)
	}
	if v.Joined.Sends == 0 || v.Joined.Delivers == 0 {
		t.Fatal("no cross-checked traffic in the joined journal")
	}
	if raceEnabled {
		// See meshTiming: the run above gave the detector full coverage of
		// the pump/transport/oracle paths; convergence within the window is
		// a wall-clock property the instrumented build can't promise.
		if v.Joined.Duplicates != 0 {
			t.Errorf("joined journal counted %d duplicate deliveries", v.Joined.Duplicates)
		}
		t.Skip("liveness asserted without -race only; safety checks passed")
	}
	for i, r := range results {
		if !r.Converged {
			t.Errorf("node %d did not converge: %+v", i, r.Summary)
		}
	}
	if !v.Converged {
		t.Fatalf("merged verdict failed:\n%v", v.Problems)
	}
}

func TestThreeNodeLoopbackSurvivesChaos(t *testing.T) {
	scn := testScenario(10, 7)
	var mu sync.Mutex
	drops, dups := 0, 0
	results, hdrs, parts, sums := runMesh(t, scn, 3, func(mesh *transport.Loopback) {
		n := 0
		mesh.Drop = func(_, _ transport.NodeID, _ sim.Message) bool {
			mu.Lock()
			defer mu.Unlock()
			n++
			if n%13 == 0 && drops < 5 {
				drops++
				return true
			}
			return false
		}
		mesh.Duplicate = func(_, _ transport.NodeID, _ sim.Message) bool {
			mu.Lock()
			defer mu.Unlock()
			if n%7 == 0 && dups < 5 {
				dups++
				return true
			}
			return false
		}
	})
	for i, r := range results {
		if !r.Converged {
			t.Errorf("node %d did not converge under chaos: %+v", i, r.Summary)
		}
	}
	v, err := Verify(hdrs, parts, sums)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Converged {
		t.Fatalf("merged verdict failed under chaos:\n%v", v.Problems)
	}
	mu.Lock()
	defer mu.Unlock()
	if drops == 0 && dups == 0 {
		t.Skip("chaos hooks never fired (scenario too quiet)")
	}
	// Duplicated frames are absorbed by the node's exactly-once watermark
	// before they reach an engine, so the joined journal sees each delivery
	// once.
	if v.Joined.Duplicates != 0 {
		t.Errorf("joined journal counted %d duplicate deliveries; dedupe leaked", v.Joined.Duplicates)
	}
}

func TestThreeNodeTCPConverges(t *testing.T) {
	scn := testScenario(9, 11)
	const nn = 3
	ns := make([]*Node, nn)
	bufs := make([]*bytes.Buffer, nn)
	trs := make([]*transport.TCP, nn)
	maxWall, roundEvery := meshTiming()
	if roundEvery < 5*time.Millisecond {
		roundEvery = 5 * time.Millisecond
	}
	for i := 0; i < nn; i++ {
		bufs[i] = &bytes.Buffer{}
		n, err := New(Config{ID: i, Nodes: nn, Scenario: scn, Journal: bufs[i],
			MaxWall: maxWall, Linger: 200 * time.Millisecond,
			RoundEvery: roundEvery, DoneEvery: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ns[i] = n
		tr, err := transport.NewTCP(transport.TCPConfig{
			Self: transport.NodeID(i), Listen: "127.0.0.1:0",
			Peers: make(map[transport.NodeID]string), Handler: n})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	// Peer addresses exist only after all listeners are up; fill them in
	// before any node starts sending.
	for i := 0; i < nn; i++ {
		for j := 0; j < nn; j++ {
			if i != j {
				trs[i].SetPeer(transport.NodeID(j), trs[j].Addr())
			}
		}
	}
	results := make([]Result, nn)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range ns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = ns[i].Run(trs[i], stop)
		}(i)
	}
	wg.Wait()
	for _, tr := range trs {
		tr.Close()
	}

	hdrs := make([]trace.Header, nn)
	parts := make([][]trace.Record, nn)
	sums := make([]Summary, nn)
	for i := 0; i < nn; i++ {
		h, recs, err := trace.ReadJournal(bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatalf("journal %d: %v", i, err)
		}
		hdrs[i], parts[i], sums[i] = h, recs, results[i].Summary
	}
	v, err := Verify(hdrs, parts, sums)
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		// See meshTiming: TCP read/write/redial paths got their race
		// coverage above; convergence is asserted without the detector.
		if v.Joined.Duplicates != 0 {
			t.Errorf("joined journal counted %d duplicate deliveries", v.Joined.Duplicates)
		}
		t.Skip("liveness asserted without -race only; safety checks passed")
	}
	for i, r := range results {
		if !r.Converged {
			t.Errorf("node %d did not converge over TCP: %+v", i, r.Summary)
		}
	}
	if !v.Converged {
		t.Fatalf("merged TCP verdict failed:\n%v", v.Problems)
	}
}

func TestInterruptedRunFlushesReadableJournal(t *testing.T) {
	scn := testScenario(14, 3)
	// One-node run (everything local) interrupted immediately: the journal
	// must still be a parseable prefix and the summary must say interrupted.
	buf := &bytes.Buffer{}
	n, err := New(Config{ID: 0, Nodes: 1, Scenario: scn, Journal: buf,
		MaxWall: 30 * time.Second, StepBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	mesh := transport.NewLoopback()
	port := mesh.Attach(n)
	stop := make(chan struct{})
	close(stop)
	res := n.Run(port, stop)
	if !res.Summary.Interrupted || res.Converged {
		t.Fatalf("interrupted run misreported: %+v", res)
	}
	if _, _, err := trace.ReadJournal(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("interrupted journal unreadable: %v", err)
	}
}

func TestVerifyFlagsMissingExit(t *testing.T) {
	if raceEnabled {
		// Pure verdict-bookkeeping test, but it needs a converged mesh to
		// doctor; see meshTiming for why race builds can't promise one.
		t.Skip("needs a converged mesh; liveness asserted without -race only")
	}
	scn := testScenario(12, 42)
	_, hdrs, parts, sums := runMesh(t, scn, 3, nil)
	// Pretend one exited leaver is still live and its exit never happened.
	for si := range sums {
		if len(sums[si].Exited) == 0 {
			continue
		}
		u := sums[si].Exited[0]
		sums[si].Exited = sums[si].Exited[1:]
		sums[si].Live = append(sums[si].Live, ProcState{Index: u, Mode: "leaving"})
		v, err := Verify(hdrs, parts, sums)
		if err != nil {
			t.Fatal(err)
		}
		if v.Converged {
			t.Fatalf("verdict accepted a run where p%d never exited", u+1)
		}
		found := false
		for _, p := range v.Problems {
			if p == fmt.Sprintf("leaver p%d did not exit", u+1) {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing-exit problem not reported: %v", v.Problems)
		}
		return
	}
	t.Fatal("no node reported an exited leaver")
}
