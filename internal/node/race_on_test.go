//go:build race

package node

const raceEnabled = true
