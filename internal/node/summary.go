package node

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fdp/internal/churn"
	"fdp/internal/ref"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

// ProcState is one live process's final state as its owner saw it: enough
// to rebuild this node's slice of the final process graph (explicit edges
// from stored references, implicit ones from queued messages).
type ProcState struct {
	Index  int    `json:"i"`
	Mode   string `json:"mode"`
	Stored []int  `json:"stored,omitempty"`
	Queued []int  `json:"queued,omitempty"`
}

// Summary is one node's end-of-run report. The merge step (Verify) stitches
// all nodes' summaries and journals into the run verdict.
type Summary struct {
	Node        int  `json:"node"`
	Nodes       int  `json:"nodes"`
	Interrupted bool `json:"interrupted,omitempty"`
	TimedOut    bool `json:"timed_out,omitempty"`
	Steps       int  `json:"steps"`
	// Leavers are the owned leaver indexes; Exited the owned indexes that
	// executed exit (a non-leaver here is itself a verdict problem).
	Leavers []int `json:"leavers"`
	Exited  []int `json:"exited"`
	// Live is every owned process still present, with its final edges.
	Live []ProcState `json:"live"`
	// Stall and StallStep record the liveness watchdog's first verdict on
	// this node ("" = no stall observed; see obs.StallKind). Informational:
	// a transient stall that later resolved still shows here.
	Stall     string `json:"stall,omitempty"`
	StallStep int    `json:"stall_step,omitempty"`
}

// buildSummary snapshots the node's final state on the pump goroutine.
func (n *Node) buildSummary(interrupted, timedOut bool) Summary {
	s := Summary{Node: n.cfg.ID, Nodes: n.cfg.Nodes,
		Interrupted: interrupted, TimedOut: timedOut, Steps: n.steps,
		Leavers: []int{}, Exited: []int{}, Live: []ProcState{},
		Stall: n.stallKind, StallStep: n.stallStep}
	for _, r := range n.ownedLeave {
		s.Leavers = append(s.Leavers, ref.Index(r))
	}
	for _, r := range n.owned {
		if n.world.LifeOf(r) == sim.Gone {
			s.Exited = append(s.Exited, ref.Index(r))
			continue
		}
		ps := ProcState{Index: ref.Index(r), Mode: n.world.ModeOf(r).String()}
		seen := make(map[int]bool)
		for _, w := range n.world.ProtocolOf(r).Refs() {
			if i := ref.Index(w); !seen[i] {
				seen[i] = true
				ps.Stored = append(ps.Stored, i)
			}
		}
		sort.Ints(ps.Stored)
		qseen := make(map[int]bool)
		for _, m := range n.world.ChannelSnapshot(r) {
			for _, ri := range m.Refs {
				if i := ref.Index(ri.Ref); !qseen[i] {
					qseen[i] = true
					ps.Queued = append(ps.Queued, i)
				}
			}
		}
		sort.Ints(ps.Queued)
		s.Live = append(s.Live, ps)
	}
	return s
}

// Verdict is the merged outcome of a multi-node run.
type Verdict struct {
	Nodes     int
	Converged bool
	// Problems lists every verdict failure in human terms; empty means the
	// run satisfied Lemma 3 (all leavers exited, with journal evidence) and
	// Lemma 2 (surviving relevant processes weakly connected per initial
	// component).
	Problems []string
	Joined   *trace.Joined
}

// Verify merges per-node journals and summaries into the run verdict:
// journals must join causally (trace.Join), every node must have finished
// cleanly, every leaver must be gone with an exit record, no stayer may be
// gone, and the survivors' process graph must keep each initial component
// weakly connected.
func Verify(hdrs []trace.Header, parts [][]trace.Record, sums []Summary) (*Verdict, error) {
	if len(sums) == 0 || len(hdrs) != len(sums) {
		return nil, fmt.Errorf("node: %d journals but %d summaries", len(hdrs), len(sums))
	}
	nodes := sums[0].Nodes
	byNode := make([]*Summary, nodes)
	for i := range sums {
		s := &sums[i]
		if s.Nodes != nodes || s.Node < 0 || s.Node >= nodes {
			return nil, fmt.Errorf("node: summary %d/%d inconsistent with %d-node run", s.Node, s.Nodes, nodes)
		}
		if byNode[s.Node] != nil {
			return nil, fmt.Errorf("node: two summaries for node %d", s.Node)
		}
		byNode[s.Node] = s
	}
	for i, s := range byNode {
		if s == nil {
			return nil, fmt.Errorf("node: no summary for node %d", i)
		}
	}

	joined, err := trace.Join(hdrs, parts)
	if err != nil {
		return nil, err
	}
	v := &Verdict{Nodes: nodes, Joined: joined}
	v.Problems = append(v.Problems, joined.Problems...)

	// Rebuild the shared scenario for the global leaver set and the initial
	// components — the same pure construction every node ran.
	ccfg, err := hdrs[0].Scenario.ChurnConfig()
	if err != nil {
		return nil, err
	}
	global, err := churn.TryBuild(ccfg)
	if err != nil {
		return nil, err
	}
	leaver := make(map[int]bool)
	for _, r := range global.LeavingNodes() {
		leaver[ref.Index(r)] = true
	}

	exitRec := make(map[int]bool)
	for _, r := range joined.Records {
		if r.Kind == "exit" {
			if i, ok := parseProc(r.Proc); ok {
				exitRec[i] = true
			}
		}
	}

	live := make(map[int]*ProcState)
	exited := make(map[int]bool)
	for _, s := range byNode {
		if s.Interrupted {
			v.Problems = append(v.Problems, fmt.Sprintf("node %d was interrupted", s.Node))
		}
		if s.TimedOut {
			v.Problems = append(v.Problems, fmt.Sprintf("node %d timed out", s.Node))
		}
		for _, i := range s.Exited {
			exited[i] = true
			if !leaver[i] {
				v.Problems = append(v.Problems, fmt.Sprintf("staying process p%d exited on node %d", i+1, s.Node))
			}
			if !exitRec[i] {
				v.Problems = append(v.Problems, fmt.Sprintf("p%d reported exited but no exit record in any journal", i+1))
			}
		}
		for pi := range s.Live {
			p := &s.Live[pi]
			live[p.Index] = p
		}
	}
	for i := range leaver {
		if !exited[i] && live[i] == nil {
			v.Problems = append(v.Problems, fmt.Sprintf("leaver p%d unaccounted for (neither live nor exited)", i+1))
		}
	}
	// Lemma 3 (the run's goal): every leaver gone. Report in index order.
	var stuck []int
	for i := range leaver {
		if !exited[i] {
			stuck = append(stuck, i)
		}
	}
	sort.Ints(stuck)
	for _, i := range stuck {
		v.Problems = append(v.Problems, fmt.Sprintf("leaver p%d did not exit", i+1))
	}

	// Lemma 2 on the final state: the surviving processes of each initial
	// component must stay weakly connected through stored or queued
	// references. Union-find over live indexes.
	parent := make(map[int]int, len(live))
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := range live {
		parent[i] = i
	}
	union := func(a, b int) {
		if _, ok := live[b]; !ok {
			return
		}
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i, p := range live {
		for _, w := range p.Stored {
			union(i, w)
		}
		for _, w := range p.Queued {
			union(i, w)
		}
	}
	for _, comp := range global.Initial.WeaklyConnectedComponents() {
		var members []int
		for _, r := range comp {
			if i := ref.Index(r); live[i] != nil {
				members = append(members, i)
			}
		}
		sort.Ints(members)
		for _, m := range members[min(1, len(members)):] {
			if find(m) != find(members[0]) {
				v.Problems = append(v.Problems, fmt.Sprintf(
					"Lemma 2 violated: p%d disconnected from p%d in its initial component", m+1, members[0]+1))
			}
		}
	}

	v.Converged = len(v.Problems) == 0
	return v, nil
}

// parseProc maps a journal proc name ("p3") back to its process index (2).
func parseProc(s string) (int, bool) {
	if !strings.HasPrefix(s, "p") {
		return 0, false
	}
	id, err := strconv.Atoi(s[1:])
	if err != nil || id < 1 {
		return 0, false
	}
	return id - 1, true
}
