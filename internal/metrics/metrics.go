// Package metrics aggregates per-run measurements into the tables and data
// series that EXPERIMENTS.md reports. Stdlib only: plain text tables and
// CSV, no plotting.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is a set of float64 observations.
type Sample struct {
	values []float64
	sorted []float64 // cached sorted copy; nil until the first quantile query
}

// Add appends an observation and invalidates the sorted cache.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = nil
}

// AddInt appends an integer observation.
func (s *Sample) AddInt(v int) { s.Add(float64(v)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank; 0 for an empty sample. The sorted copy is cached across
// calls and rebuilt lazily after the next Add, so sweeping many quantiles
// over one sample (the p50/p99 series of the bench harness) sorts once
// instead of once per query.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append(make([]float64, 0, len(s.values)), s.values...)
		sort.Float64s(s.sorted)
	}
	if p <= 0 {
		return s.sorted[0]
	}
	if p >= 100 {
		return s.sorted[len(s.sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.sorted[rank]
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Table builds aligned plain-text tables, the output format of the
// benchmark harness.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as CSV (headers first). Cells containing commas or
// quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named (x, y) data series, the "figure" output of the harness.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// CSV renders "x,y" lines with a header.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x,%s\n", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, "%s,%s\n", formatFloat(s.X[i]), formatFloat(s.Y[i]))
	}
	return b.String()
}

// NonIncreasing reports whether the series' Y values never increase — the
// check used for Φ decay figures.
func (s *Series) NonIncreasing() bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1] {
			return false
		}
	}
	return true
}

// ASCIIPlot renders a crude fixed-size plot of the series for terminal
// inspection of figure shapes (log-style growth, decay, crossovers).
func (s *Series) ASCIIPlot(width, height int) string {
	if len(s.X) == 0 || width < 2 || height < 2 {
		return "(empty series)\n"
	}
	minX, maxX := s.X[0], s.X[0]
	minY, maxY := s.Y[0], s.Y[0]
	for i := range s.X {
		minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
		minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range s.X {
		c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
		r := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [y: %s..%s, x: %s..%s]\n", s.Name,
		formatFloat(minY), formatFloat(maxY), formatFloat(minX), formatFloat(maxX))
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	return b.String()
}
