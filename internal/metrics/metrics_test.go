package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 4 {
		t.Fatalf("Median = %v", s.Median())
	}
	if s.Percentile(100) != 8 || s.Percentile(0) != 2 {
		t.Fatal("extreme percentiles wrong")
	}
	if s.Stddev() <= 0 {
		t.Fatal("stddev must be positive for spread data")
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample must return zeros")
	}
}

func TestSampleAddInt(t *testing.T) {
	var s Sample
	s.AddInt(3)
	if s.Mean() != 3 {
		t.Fatal("AddInt broken")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(vals []float64, p uint8) bool {
		var s Sample
		for _, v := range vals {
			s.Add(v)
		}
		if len(vals) == 0 {
			return s.Percentile(float64(p%101)) == 0
		}
		got := s.Percentile(float64(p % 101))
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1: demo", "n", "steps", "msgs")
	tb.AddRow(8, 120, 456.789)
	tb.AddRow(16, 240, 1000.0)
	out := tb.String()
	if !strings.Contains(out, "T1: demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "456.8") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "1000") {
		t.Fatal("integral float must drop decimals")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatal("NumRows wrong")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `quote"inside`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"quote""inside"`) {
		t.Fatalf("CSV quoting wrong: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatal("CSV header wrong")
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "phi"}
	s.Append(0, 10)
	s.Append(1, 5)
	s.Append(2, 5)
	if !s.NonIncreasing() {
		t.Fatal("series is non-increasing")
	}
	s.Append(3, 6)
	if s.NonIncreasing() {
		t.Fatal("increase not detected")
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "x,phi\n") || !strings.Contains(csv, "1,5") {
		t.Fatalf("series CSV wrong: %s", csv)
	}
}

func TestASCIIPlot(t *testing.T) {
	s := Series{Name: "decay"}
	for i := 0; i < 20; i++ {
		s.Append(float64(i), float64(20-i))
	}
	plot := s.ASCIIPlot(40, 10)
	if !strings.Contains(plot, "*") {
		t.Fatal("plot has no points")
	}
	if !strings.Contains(plot, "decay") {
		t.Fatal("plot has no name")
	}
	empty := (&Series{}).ASCIIPlot(10, 5)
	if !strings.Contains(empty, "empty") {
		t.Fatal("empty plot not handled")
	}
	flat := Series{Name: "flat"}
	flat.Append(1, 2)
	if out := flat.ASCIIPlot(10, 5); !strings.Contains(out, "*") {
		t.Fatal("single-point plot broken")
	}
}

// Regression for the percentile cache: queries after an Add must see the
// new observation (the cache is invalidated, not stale), and repeated
// queries between Adds must agree with a fresh sort.
func TestPercentileCacheInvalidatedByAdd(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 9} {
		s.Add(v)
	}
	if s.Median() != 5 {
		t.Fatalf("Median = %v, want 5", s.Median())
	}
	// This Add must invalidate the sorted cache built by the query above.
	s.Add(100)
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("max after Add = %v, want 100 (stale cache?)", got)
	}
	if got := s.Median(); got != 5 {
		t.Fatalf("median after Add = %v, want 5", got)
	}
	// Adding out-of-order values must not leave the cache sorted-but-wrong.
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("min after Add = %v, want 0", got)
	}
	// Unsorted source order must survive the cached sort (Add keeps values
	// in insertion order; only the cache is sorted).
	if s.values[0] != 5 {
		t.Fatalf("Add reordered the underlying values: %v", s.values)
	}
}

// BenchmarkPercentileSweep measures the bench-harness access pattern: many
// quantile queries against a sample that stopped growing. With the cache
// this is one sort amortized over the sweep.
func BenchmarkPercentileSweep(b *testing.B) {
	var s Sample
	for i := 0; i < 10000; i++ {
		s.Add(float64((i * 7919) % 10000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Percentile(50)
		_ = s.Percentile(99)
	}
}

// BenchmarkPercentileInterleaved is the worst case for the cache: every Add
// invalidates, so each query pays a full sort, matching the pre-cache cost.
func BenchmarkPercentileInterleaved(b *testing.B) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
		_ = s.Percentile(99)
	}
}
