// Package faults injects transient faults into a RUNNING system — the
// fault class self-stabilization is defined against (Section 1.2: "a
// self-stabilizing protocol is thus able to recover from transient faults
// regardless of their nature"). Where package churn corrupts initial
// states, this package strikes mid-run: it flips stored mode beliefs,
// scrambles anchors, and injects spurious messages, then lets the protocol
// re-converge.
//
// A strike never deletes references outright (an adversary that burns the
// last copy of a reference provably makes reconnection impossible for any
// copy-store-send protocol, so no protocol could pass such a test); it
// corrupts values while preserving the reference multiset, plus may ADD
// junk. After a strike the world's initial components are re-sealed: the
// post-fault state is the new "arbitrary initial state" convergence is
// measured from.
package faults

import (
	"math/rand"

	"fdp/internal/core"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Config tunes a strike.
type Config struct {
	// FlipBeliefs is the probability of flipping each stored mode belief.
	FlipBeliefs float64
	// ScrambleAnchors is the probability per process of corrupting the
	// anchor belief (and, for leaving processes, re-pointing the anchor to
	// a random live process — which adds an edge, never removes one).
	ScrambleAnchors float64
	// JunkMessages is the number of spurious present/forward messages
	// injected with random live references and random claims.
	JunkMessages int
}

// Report summarizes what a strike corrupted.
type Report struct {
	BeliefsFlipped   int
	AnchorsScrambled int
	MessagesInjected int
}

// Injector applies strikes using its own seeded randomness.
type Injector struct {
	cfg Config
	rng *rand.Rand
}

// New returns a seeded injector.
func New(cfg Config, seed int64) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Strike corrupts the current state of every (non-gone) process running the
// departure protocol, then re-seals the world's initial components so
// legitimacy is judged from the post-fault state.
func (i *Injector) Strike(w *sim.World) Report {
	rep := Report{}
	live := i.liveRefs(w)
	if len(live) == 0 {
		return rep
	}
	for _, r := range live {
		p, ok := w.ProtocolOf(r).(*core.Proc)
		if !ok {
			continue
		}
		for v, belief := range p.Neighbors() {
			if i.rng.Float64() < i.cfg.FlipBeliefs {
				p.SetNeighbor(v, flip(belief))
				rep.BeliefsFlipped++
			}
		}
		if !p.Anchor().IsNil() || w.ModeOf(r) == sim.Leaving {
			if i.rng.Float64() < i.cfg.ScrambleAnchors {
				target := live[i.rng.Intn(len(live))]
				if target != r {
					p.SetAnchor(target, randomMode(i.rng))
					rep.AnchorsScrambled++
				}
			}
		}
	}
	for n := 0; n < i.cfg.JunkMessages; n++ {
		to := live[i.rng.Intn(len(live))]
		carried := live[i.rng.Intn(len(live))]
		label := core.LabelPresent
		if i.rng.Intn(2) == 0 {
			label = core.LabelForward
		}
		w.Enqueue(to, sim.NewMessage(label, sim.RefInfo{Ref: carried, Mode: randomMode(i.rng)}))
		rep.MessagesInjected++
	}
	// The strike mutated protocol variables outside any atomic action, so the
	// incrementally maintained process graph must be rebuilt.
	w.InvalidatePG()
	// The post-fault state is the new reference point for condition (iii).
	w.SealInitialState()
	return rep
}

func (i *Injector) liveRefs(w *sim.World) []ref.Ref {
	var out []ref.Ref
	for _, r := range w.Refs() {
		if w.LifeOf(r) != sim.Gone {
			out = append(out, r)
		}
	}
	return out
}

func flip(m sim.Mode) sim.Mode {
	if m == sim.Staying {
		return sim.Leaving
	}
	return sim.Staying
}

func randomMode(rng *rand.Rand) sim.Mode {
	if rng.Intn(2) == 0 {
		return sim.Staying
	}
	return sim.Leaving
}
