// Package faults injects transient faults into a RUNNING system — the
// fault class self-stabilization is defined against (Section 1.2: "a
// self-stabilizing protocol is thus able to recover from transient faults
// regardless of their nature"). Where package churn corrupts initial
// states, this package strikes mid-run: it flips stored mode beliefs,
// scrambles anchors, and injects spurious messages, then lets the protocol
// re-converge.
//
// A strike never deletes references outright (an adversary that burns the
// last copy of a reference provably makes reconnection impossible for any
// copy-store-send protocol, so no protocol could pass such a test); it
// corrupts values while preserving the reference multiset, plus may ADD
// junk. After a strike the system's initial components are re-sealed: the
// post-fault state is the new "arbitrary initial state" convergence is
// measured from.
//
// The same Injector strikes both execution engines: Strike pauses nothing
// (the sequential world is between actions by construction), while
// StrikeRuntime pauses the concurrent runtime under its snapshot write lock
// via parallel.Runtime.Mutate, so the corruption is atomic with respect to
// every process goroutine — identical strike semantics on both sides, which
// is what lets the differential harness (internal/diffval) compare their
// verdicts.
package faults

import (
	"math/rand"

	"fdp/internal/core"
	"fdp/internal/parallel"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Config tunes a strike.
type Config struct {
	// FlipBeliefs is the probability of flipping each stored mode belief.
	FlipBeliefs float64
	// ScrambleAnchors is the probability per process of corrupting the
	// anchor belief (and, for leaving processes, re-pointing the anchor to
	// a random live process — which adds an edge, never removes one: the
	// displaced anchor reference is kept in flight).
	ScrambleAnchors float64
	// JunkMessages is the number of spurious present/forward messages
	// injected with random live references and random claims.
	JunkMessages int
	// DuplicateMessages re-enqueues up to this many copies of random
	// in-flight messages to their original targets — the channel-duplication
	// adversary. Duplication only copies references (never consumes them),
	// so it is admissible for any copy-store-send protocol; a protocol that
	// cannot tolerate a duplicated present/forward message is broken.
	DuplicateMessages int
}

// Wave schedules one strike at a point in a run: after After sequential
// steps on the simulator, or After executed events on the concurrent
// runtime. A run can take a whole train of waves — the "unbounded churn"
// adversary is a wave train with increasing After points.
type Wave struct {
	Config
	After int
}

// WaveSeed derives the deterministic rng seed of the i-th wave from a run's
// base seed. Recording and replay must derive wave seeds identically for a
// journal to replay byte-identically, so the derivation lives here, next to
// the injector it feeds.
func WaveSeed(base int64, i int) int64 { return base + int64(i+1)*1000003 }

// Report summarizes what a strike corrupted.
type Report struct {
	BeliefsFlipped     int
	AnchorsScrambled   int
	MessagesInjected   int
	MessagesDuplicated int
}

// Injector applies strikes using its own seeded randomness.
type Injector struct {
	cfg Config
	rng *rand.Rand
}

// New returns a seeded injector.
func New(cfg Config, seed int64) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// system abstracts the two execution engines a strike can hit. Both views
// guarantee exclusive access for the duration of the strike and must
// enumerate Live in a deterministic order, so a given (Config, seed) draws
// the same corruption on either engine.
type system interface {
	Live() []ref.Ref
	Alive(r ref.Ref) bool
	ModeOf(r ref.Ref) sim.Mode
	ProtocolOf(r ref.Ref) sim.Protocol
	Enqueue(to ref.Ref, msg sim.Message) bool
	ChannelSnapshot(r ref.Ref) []sim.Message
}

// Strike corrupts the current state of every (non-gone) process running the
// departure protocol, then re-seals the world's initial components so
// legitimacy is judged from the post-fault state.
func (i *Injector) Strike(w *sim.World) Report {
	rep := i.strike(worldSystem{w})
	// The strike mutated protocol variables outside any atomic action, so the
	// incrementally maintained process graph must be rebuilt.
	w.InvalidatePG()
	// The post-fault state is the new reference point for condition (iii).
	w.SealInitialState()
	return rep
}

// StrikeRuntime applies the same corruption to a RUNNING concurrent
// runtime: the world is paused under the snapshot write lock for the
// duration of the strike (no action executes concurrently), and the
// runtime's initial components are re-sealed from the post-fault state
// before the goroutines resume.
func (i *Injector) StrikeRuntime(rt *parallel.Runtime) Report {
	var rep Report
	rt.Mutate(func(v *parallel.MutableView) {
		rep = i.strike(v)
		v.Reseal()
	})
	return rep
}

// strike is the engine-agnostic corruption pass.
func (i *Injector) strike(sys system) Report {
	rep := Report{}
	live := sys.Live()
	if len(live) == 0 {
		return rep
	}
	for _, r := range live {
		p, ok := sys.ProtocolOf(r).(*core.Proc)
		if !ok {
			continue
		}
		// Deterministic iteration order: ranging over the Neighbors() map
		// here used to consume rng draws in map order, so the same seed
		// corrupted different beliefs from run to run.
		beliefs := p.Neighbors()
		for _, v := range p.NeighborRefs() {
			if i.rng.Float64() < i.cfg.FlipBeliefs {
				p.SetNeighbor(v, flip(beliefs[v]))
				rep.BeliefsFlipped++
			}
		}
		if !p.Anchor().IsNil() || sys.ModeOf(r) == sim.Leaving {
			if i.rng.Float64() < i.cfg.ScrambleAnchors {
				// Resample until the target differs from the struck process
				// itself. The old code skipped the scramble entirely when the
				// first draw hit r, silently biasing the configured rate
				// downward (by 1/len(live) per eligible process).
				target := live[i.rng.Intn(len(live))]
				for target == r && len(live) > 1 {
					target = live[i.rng.Intn(len(live))]
				}
				if target != r {
					// Keep the displaced anchor reference in flight:
					// overwriting it outright could burn the last copy of a
					// reference, which the package contract forbids.
					old := p.RepointAnchor(target, randomMode(i.rng))
					if !old.Ref.IsNil() && old.Ref != target {
						sys.Enqueue(r, sim.NewMessage(core.LabelPresent, old))
					}
					rep.AnchorsScrambled++
				}
			}
		}
	}
	for n := 0; n < i.cfg.JunkMessages; n++ {
		to := live[i.rng.Intn(len(live))]
		carried := live[i.rng.Intn(len(live))]
		label := core.LabelPresent
		if i.rng.Intn(2) == 0 {
			label = core.LabelForward
		}
		sys.Enqueue(to, sim.NewMessage(label, sim.RefInfo{Ref: carried, Mode: randomMode(i.rng)}))
		rep.MessagesInjected++
	}
	for n := 0; n < i.cfg.DuplicateMessages; n++ {
		to := live[i.rng.Intn(len(live))]
		ch := sys.ChannelSnapshot(to)
		if len(ch) == 0 {
			continue
		}
		// Re-enqueue a copy of one pending message to its original target.
		// The engine restamps sequence and causal identity on enqueue, so the
		// duplicate is a distinct message carrying the same content.
		sys.Enqueue(to, ch[i.rng.Intn(len(ch))])
		rep.MessagesDuplicated++
	}
	return rep
}

// worldSystem adapts the sequential simulator to the strike interface.
type worldSystem struct{ w *sim.World }

func (s worldSystem) Live() []ref.Ref {
	var out []ref.Ref
	for _, r := range s.w.Refs() {
		if s.w.LifeOf(r) != sim.Gone {
			out = append(out, r)
		}
	}
	return out
}

func (s worldSystem) Alive(r ref.Ref) bool {
	return s.w.Has(r) && s.w.LifeOf(r) != sim.Gone
}

func (s worldSystem) ModeOf(r ref.Ref) sim.Mode         { return s.w.ModeOf(r) }
func (s worldSystem) ProtocolOf(r ref.Ref) sim.Protocol { return s.w.ProtocolOf(r) }
func (s worldSystem) ChannelSnapshot(r ref.Ref) []sim.Message {
	if !s.Alive(r) {
		return nil
	}
	return s.w.ChannelSnapshot(r)
}
func (s worldSystem) Enqueue(to ref.Ref, m sim.Message) bool {
	if !s.Alive(to) {
		return false
	}
	s.w.Enqueue(to, m)
	return true
}

// *parallel.MutableView satisfies system directly.
var _ system = (*parallel.MutableView)(nil)

func flip(m sim.Mode) sim.Mode {
	if m == sim.Staying {
		return sim.Leaving
	}
	return sim.Staying
}

func randomMode(rng *rand.Rand) sim.Mode {
	if rng.Intn(2) == 0 {
		return sim.Staying
	}
	return sim.Leaving
}
