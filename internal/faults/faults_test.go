package faults

import (
	"testing"
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/parallel"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

func buildScenario(seed int64) *churn.Scenario {
	return churn.Build(churn.Config{
		N: 14, Topology: churn.TopoRandom, LeaveFraction: 0.4,
		Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: seed,
	})
}

func TestStrikeCorruptsState(t *testing.T) {
	s := buildScenario(1)
	if phi := core.Phi(s.World); phi != 0 {
		t.Fatalf("clean start must have Φ=0, got %d", phi)
	}
	inj := New(Config{FlipBeliefs: 1.0, ScrambleAnchors: 1.0, JunkMessages: 10}, 2)
	rep := inj.Strike(s.World)
	if rep.BeliefsFlipped == 0 || rep.MessagesInjected != 10 {
		t.Fatalf("strike did nothing: %+v", rep)
	}
	if phi := core.Phi(s.World); phi == 0 {
		t.Fatal("full strike must create invalid information")
	}
}

func TestStrikePreservesReferenceOwnership(t *testing.T) {
	// Strikes only corrupt values and add messages; every reference must
	// still point to a live process (no dangling refs invented).
	s := buildScenario(3)
	inj := New(Config{FlipBeliefs: 0.8, ScrambleAnchors: 0.9, JunkMessages: 20}, 4)
	inj.Strike(s.World)
	pg := s.World.PG()
	for _, e := range pg.Edges() {
		if s.World.LifeOf(e.To) == sim.Gone {
			t.Fatalf("strike created edge to gone process: %v", e)
		}
	}
}

func TestRecoveryAfterRepeatedStrikes(t *testing.T) {
	// The headline self-stabilization property: strike mid-run, converge,
	// strike again, converge again.
	s := buildScenario(5)
	sched := sim.NewRandomScheduler(5, 256)
	inj := New(Config{FlipBeliefs: 0.6, ScrambleAnchors: 0.7, JunkMessages: 10}, 6)
	for round := 0; round < 3; round++ {
		res := sim.Run(s.World, sched, sim.RunOptions{
			Variant: sim.FDP, MaxSteps: s.World.Steps() + 400000, CheckSafety: true,
		})
		if res.SafetyViolation != nil {
			t.Fatalf("round %d: %v", round, res.SafetyViolation)
		}
		if !res.Converged {
			t.Fatalf("round %d: no convergence after strike", round)
		}
		inj.Strike(s.World)
	}
	// Final convergence check after the last strike.
	res := sim.Run(s.World, sched, sim.RunOptions{
		Variant: sim.FDP, MaxSteps: s.World.Steps() + 400000, CheckSafety: true,
	})
	if !res.Converged || res.SafetyViolation != nil {
		t.Fatalf("final recovery failed: %+v", res)
	}
}

func TestStrikeReSealsComponents(t *testing.T) {
	s := buildScenario(7)
	before := s.World.InitialComponents()
	inj := New(Config{JunkMessages: 5}, 8)
	inj.Strike(s.World)
	after := s.World.InitialComponents()
	if len(after) == 0 {
		t.Fatal("components not re-sealed")
	}
	_ = before
}

// Regression: Strike used to draw the scramble target BEFORE checking it
// against the struck process and skipped the whole scramble when the draw
// hit the process itself — so ScrambleAnchors=1.0 did not mean "every
// eligible anchor is scrambled". The fix resamples the target instead of
// consuming the roll.
func TestScrambleRateNotBiasedBySelfDraws(t *testing.T) {
	for seed := int64(0); seed <= 10; seed++ {
		space := ref.NewSpace()
		a, b, c := space.New(), space.New(), space.New()
		w := sim.NewWorld(nil)
		pa, pb, pc := core.New(core.VariantFDP), core.New(core.VariantFDP), core.New(core.VariantFDP)
		pa.SetNeighbor(b, sim.Leaving)
		pb.SetNeighbor(a, sim.Leaving)
		pc.SetNeighbor(a, sim.Leaving)
		w.AddProcess(a, sim.Leaving, pa)
		w.AddProcess(b, sim.Leaving, pb)
		w.AddProcess(c, sim.Staying, pc)
		w.SealInitialState()

		inj := New(Config{ScrambleAnchors: 1.0}, seed)
		rep := inj.Strike(w)
		// Exactly a and b are eligible (leaving); with probability 1.0 both
		// MUST be scrambled regardless of which targets the rng draws.
		if rep.AnchorsScrambled != 2 {
			t.Fatalf("seed %d: AnchorsScrambled=%d, want 2", seed, rep.AnchorsScrambled)
		}
	}
}

// Same (Config, seed) on identical worlds must produce identical corruption.
// The old implementation ranged over the Neighbors() map, consuming rng
// draws in nondeterministic map order.
func TestStrikeDeterministicPerSeed(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := buildScenario(20 + seed)
		w2 := s.World.Clone()
		cfg := Config{FlipBeliefs: 0.5, ScrambleAnchors: 0.5, JunkMessages: 7}
		rep1 := New(cfg, seed).Strike(s.World)
		rep2 := New(cfg, seed).Strike(w2)
		if rep1 != rep2 {
			t.Fatalf("seed %d: reports diverged: %+v vs %+v", seed, rep1, rep2)
		}
		if f1, f2 := s.World.Fingerprint(), w2.Fingerprint(); f1 != f2 {
			t.Fatalf("seed %d: same seed produced different post-strike states", seed)
		}
	}
}

// Regression: re-pointing an anchor used to overwrite the displaced
// reference outright. When the anchor slot held the LAST copy of a
// reference, the strike burned it — exactly the fault class the package
// contract rules out. The displaced reference must stay in flight.
func TestScramblePreservesDisplacedAnchorRef(t *testing.T) {
	for seed := int64(0); seed <= 20; seed++ {
		space := ref.NewSpace()
		a, b, c := space.New(), space.New(), space.New()
		w := sim.NewWorld(nil)
		pa, pb, pc := core.New(core.VariantFDP), core.New(core.VariantFDP), core.New(core.VariantFDP)
		// a's anchor is the ONLY copy of b's reference anywhere.
		pa.SetAnchor(b, sim.Staying)
		pc.SetNeighbor(a, sim.Leaving)
		w.AddProcess(a, sim.Leaving, pa)
		w.AddProcess(b, sim.Staying, pb)
		w.AddProcess(c, sim.Staying, pc)
		w.SealInitialState()

		inj := New(Config{ScrambleAnchors: 1.0}, seed)
		inj.Strike(w)
		// Whatever target the scramble picked, b must still be reachable:
		// either the anchor still points at b, or the displaced reference
		// rides in a's channel as a present(b) message (an implicit edge).
		if comps := w.PG().WeaklyConnectedComponents(); len(comps) != 1 {
			t.Fatalf("seed %d: strike burned the last copy of a reference (%d components)", seed, len(comps))
		}
	}
}

// StrikeRuntime must corrupt a RUNNING concurrent runtime under its pause
// lock and the protocol must then re-converge — the concurrent counterpart
// of TestRecoveryAfterRepeatedStrikes.
func TestStrikeRuntimeRecovery(t *testing.T) {
	space := ref.NewSpace()
	nodes := space.NewN(8)
	rt := parallel.NewRuntime(oracle.Single{})
	procs := make([]*core.Proc, len(nodes))
	for idx, r := range nodes {
		procs[idx] = core.New(core.VariantFDP)
		mode := sim.Staying
		if idx%3 == 0 {
			mode = sim.Leaving
		}
		rt.AddProcess(r, mode, procs[idx])
	}
	for idx := range nodes { // ring topology, correct initial beliefs
		next := (idx + 1) % len(nodes)
		mode := sim.Staying
		if next%3 == 0 {
			mode = sim.Leaving
		}
		procs[idx].SetNeighbor(nodes[next], mode)
	}

	rt.Start()
	defer rt.Stop()
	time.Sleep(2 * time.Millisecond) // let the protocol make some progress

	inj := New(Config{FlipBeliefs: 1.0, ScrambleAnchors: 1.0, JunkMessages: 8}, 11)
	rep := inj.StrikeRuntime(rt)
	if rep.BeliefsFlipped == 0 && rep.MessagesInjected == 0 {
		t.Fatalf("runtime strike did nothing: %+v", rep)
	}
	if len(rt.InitialComponents()) == 0 {
		t.Fatal("runtime strike must reseal the initial components")
	}

	converged := rt.WaitUntil(func(w *sim.World) bool {
		return w.Legitimate(sim.FDP)
	}, 2*time.Millisecond, 30*time.Second)
	if !converged {
		t.Fatal("runtime did not re-converge after the strike")
	}
	if !rt.Freeze().RelevantComponentsIntact() {
		t.Fatal("post-recovery state violates Lemma 2 relative to the post-strike seal")
	}
}

func TestStrikeOnAllGoneWorld(t *testing.T) {
	// Degenerate input: everything gone except one process.
	s := buildScenario(9)
	res := sim.Run(s.World, sim.NewRandomScheduler(9, 256), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 400000,
	})
	if !res.Converged {
		t.Fatal("setup run did not converge")
	}
	inj := New(Config{FlipBeliefs: 1, ScrambleAnchors: 1, JunkMessages: 3}, 10)
	rep := inj.Strike(s.World) // must not panic with gone processes around
	_ = rep
}

// Message duplication is the channel adversary: copies of in-flight messages
// re-enqueued to their original targets. The reference multiset only grows,
// so the protocol must tolerate it — and the duplicate must carry the same
// content as an original.
func TestStrikeDuplicatesInFlightMessages(t *testing.T) {
	s := buildScenario(13)
	// A clean build ships initial present() messages, so channels are
	// non-empty and every duplication draw should land.
	total := 0
	for _, r := range s.Nodes {
		total += s.World.ChannelLen(r)
	}
	if total == 0 {
		t.Skip("scenario built with empty channels")
	}
	inj := New(Config{DuplicateMessages: 6}, 14)
	rep := inj.Strike(s.World)
	if rep.MessagesDuplicated == 0 {
		t.Fatalf("no messages duplicated: %+v", rep)
	}
	after := 0
	for _, r := range s.Nodes {
		after += s.World.ChannelLen(r)
	}
	if after != total+rep.MessagesDuplicated {
		t.Fatalf("channel total %d, want %d + %d duplicates", after, total, rep.MessagesDuplicated)
	}
	// The struck system must still converge: duplication is admissible.
	res := sim.Run(s.World, sim.NewRandomScheduler(13, 256), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 400000, CheckSafety: true,
	})
	if !res.Converged || res.SafetyViolation != nil {
		t.Fatalf("no recovery from duplication: %+v", res)
	}
}

func TestStrikeRuntimeChannelSnapshot(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	rt := parallel.NewRuntime(nil)
	pa, pb := core.New(core.VariantFDP), core.New(core.VariantFDP)
	rt.AddProcess(a, sim.Staying, pa)
	rt.AddProcess(b, sim.Staying, pb)
	rt.Mutate(func(v *parallel.MutableView) {
		if got := v.ChannelSnapshot(a); len(got) != 0 {
			t.Fatalf("fresh mailbox not empty: %v", got)
		}
		v.Enqueue(a, sim.NewMessage(core.LabelPresent, sim.RefInfo{Ref: b, Mode: sim.Staying}))
		got := v.ChannelSnapshot(a)
		if len(got) != 1 || got[0].Label != core.LabelPresent {
			t.Fatalf("snapshot = %v", got)
		}
	})
}

func TestWaveSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 16; i++ {
		s := WaveSeed(42, i)
		if seen[s] {
			t.Fatalf("wave %d reuses seed %d", i, s)
		}
		seen[s] = true
	}
	if WaveSeed(42, 0) == 42 {
		t.Fatal("wave seed must differ from the base seed")
	}
}
