package faults

import (
	"testing"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

func buildScenario(seed int64) *churn.Scenario {
	return churn.Build(churn.Config{
		N: 14, Topology: churn.TopoRandom, LeaveFraction: 0.4,
		Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: seed,
	})
}

func TestStrikeCorruptsState(t *testing.T) {
	s := buildScenario(1)
	if phi := core.Phi(s.World); phi != 0 {
		t.Fatalf("clean start must have Φ=0, got %d", phi)
	}
	inj := New(Config{FlipBeliefs: 1.0, ScrambleAnchors: 1.0, JunkMessages: 10}, 2)
	rep := inj.Strike(s.World)
	if rep.BeliefsFlipped == 0 || rep.MessagesInjected != 10 {
		t.Fatalf("strike did nothing: %+v", rep)
	}
	if phi := core.Phi(s.World); phi == 0 {
		t.Fatal("full strike must create invalid information")
	}
}

func TestStrikePreservesReferenceOwnership(t *testing.T) {
	// Strikes only corrupt values and add messages; every reference must
	// still point to a live process (no dangling refs invented).
	s := buildScenario(3)
	inj := New(Config{FlipBeliefs: 0.8, ScrambleAnchors: 0.9, JunkMessages: 20}, 4)
	inj.Strike(s.World)
	pg := s.World.PG()
	for _, e := range pg.Edges() {
		if s.World.LifeOf(e.To) == sim.Gone {
			t.Fatalf("strike created edge to gone process: %v", e)
		}
	}
}

func TestRecoveryAfterRepeatedStrikes(t *testing.T) {
	// The headline self-stabilization property: strike mid-run, converge,
	// strike again, converge again.
	s := buildScenario(5)
	sched := sim.NewRandomScheduler(5, 256)
	inj := New(Config{FlipBeliefs: 0.6, ScrambleAnchors: 0.7, JunkMessages: 10}, 6)
	for round := 0; round < 3; round++ {
		res := sim.Run(s.World, sched, sim.RunOptions{
			Variant: sim.FDP, MaxSteps: s.World.Steps() + 400000, CheckSafety: true,
		})
		if res.SafetyViolation != nil {
			t.Fatalf("round %d: %v", round, res.SafetyViolation)
		}
		if !res.Converged {
			t.Fatalf("round %d: no convergence after strike", round)
		}
		inj.Strike(s.World)
	}
	// Final convergence check after the last strike.
	res := sim.Run(s.World, sched, sim.RunOptions{
		Variant: sim.FDP, MaxSteps: s.World.Steps() + 400000, CheckSafety: true,
	})
	if !res.Converged || res.SafetyViolation != nil {
		t.Fatalf("final recovery failed: %+v", res)
	}
}

func TestStrikeReSealsComponents(t *testing.T) {
	s := buildScenario(7)
	before := s.World.InitialComponents()
	inj := New(Config{JunkMessages: 5}, 8)
	inj.Strike(s.World)
	after := s.World.InitialComponents()
	if len(after) == 0 {
		t.Fatal("components not re-sealed")
	}
	_ = before
}

func TestStrikeOnAllGoneWorld(t *testing.T) {
	// Degenerate input: everything gone except one process.
	s := buildScenario(9)
	res := sim.Run(s.World, sim.NewRandomScheduler(9, 256), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 400000,
	})
	if !res.Converged {
		t.Fatal("setup run did not converge")
	}
	inj := New(Config{FlipBeliefs: 1, ScrambleAnchors: 1, JunkMessages: 3}, 10)
	rep := inj.Strike(s.World) // must not panic with gone processes around
	_ = rep
}
