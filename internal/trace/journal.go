package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"fdp/internal/sim"
)

// Writer appends a journal to an io.Writer: one JSON header line followed by
// one JSON record line per event. Record is hook-shaped — install it with
// World.AddEventHook (sequential) or Runtime.SetEventSink (concurrent).
//
// Locking: Writer is a leaf. It takes its own mutex (the runtime's event
// sinks run on many goroutines at once), holds no other lock while writing,
// and calls nothing that locks. Errors are sticky and reported by Err — an
// event hook has no error return, so the driver checks once at the end.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	n   int
}

// NewWriter writes the header line and returns the journal writer. A header
// write failure is sticky (see Err); the writer then drops every record.
func NewWriter(w io.Writer, hdr Header) *Writer {
	jw := &Writer{w: w}
	jw.err = writeLine(w, hdr)
	return jw
}

// Record appends one event to the journal. Safe for concurrent use; usable
// directly as a sim event hook or a parallel runtime event sink.
func (jw *Writer) Record(e sim.Event) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return
	}
	if jw.err = writeLine(jw.w, FromEvent(e)); jw.err == nil {
		jw.n++
	}
}

// Err returns the first write error, if any.
func (jw *Writer) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}

// Count returns how many records were written.
func (jw *Writer) Count() int {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.n
}

// writeLine marshals v as one JSONL line. encoding/json emits struct fields
// in declaration order and sorts map keys, so journal bytes are a pure
// function of the values — the property the byte-identical replay check
// rests on.
func writeLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJournal writes a complete journal (header plus records) in exactly
// the format Writer produces — the regeneration path the byte-identical
// replay check compares against.
func WriteJournal(w io.Writer, hdr Header, recs []Record) error {
	if err := writeLine(w, hdr); err != nil {
		return err
	}
	for i := range recs {
		if err := writeLine(w, recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadJournal parses a journal stream: the header line, then every record.
func ReadJournal(r io.Reader) (Header, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var hdr Header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, err
		}
		return hdr, nil, fmt.Errorf("trace: empty journal")
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("trace: bad journal header: %w", err)
	}
	if hdr.Version != Version {
		return hdr, nil, fmt.Errorf("trace: journal version %d, want %d", hdr.Version, Version)
	}
	if hdr.Engine != EngineSim && hdr.Engine != EngineRuntime {
		return hdr, nil, fmt.Errorf("trace: unknown journal engine %q", hdr.Engine)
	}
	var recs []Record
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return hdr, nil, fmt.Errorf("trace: bad journal record on line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	return hdr, recs, nil
}
