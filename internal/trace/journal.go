package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"fdp/internal/sim"
)

// Writer appends a journal to an io.Writer: one JSON header line followed by
// one JSON record line per event. Record is hook-shaped — install it with
// World.AddEventHook (sequential) or Runtime.SetEventSink (concurrent).
//
// Locking: Writer is a leaf. It takes its own mutex (the runtime's event
// sinks run on many goroutines at once), holds no other lock while writing,
// and calls nothing that locks. Errors are sticky and reported by Err — an
// event hook has no error return, so the driver checks once at the end.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	n   int
}

// NewWriter writes the header line and returns the journal writer. A header
// write failure is sticky (see Err); the writer then drops every record.
func NewWriter(w io.Writer, hdr Header) *Writer {
	jw := &Writer{w: w}
	jw.err = writeLine(w, hdr)
	return jw
}

// Record appends one event to the journal. Safe for concurrent use; usable
// directly as a sim event hook or a parallel runtime event sink.
func (jw *Writer) Record(e sim.Event) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return
	}
	if jw.err = writeLine(jw.w, FromEvent(e)); jw.err == nil {
		jw.n++
	}
}

// Err returns the first write error, if any.
func (jw *Writer) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}

// Count returns how many records were written.
func (jw *Writer) Count() int {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.n
}

// StreamWriter is the crash-safe sibling of Writer: it buffers records
// through a bufio.Writer (a process-journal write must not be one syscall
// per event) and exposes Flush/Close so a signal handler can force the
// buffered tail onto disk before the process dies. If the underlying writer
// has a Sync method (an *os.File), Flush also syncs, so a flushed journal
// survives the machine, not just the process.
//
// Locking: like Writer, StreamWriter is a leaf — it takes only its own
// mutex and calls nothing that locks. Errors are sticky (Err).
type StreamWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	s   interface{ Sync() error } // non-nil when the sink can fsync
	err error
	n   int
}

// NewStreamWriter writes the header line and returns the buffered journal
// writer. A header write failure is sticky; the writer then drops every
// record.
func NewStreamWriter(w io.Writer, hdr Header) *StreamWriter {
	sw := &StreamWriter{bw: bufio.NewWriterSize(w, 64*1024)}
	if s, ok := w.(interface{ Sync() error }); ok {
		sw.s = s
	}
	sw.err = writeLine(sw.bw, hdr)
	return sw
}

// Record appends one event. Safe for concurrent use; usable directly as a
// sim event hook.
func (sw *StreamWriter) Record(e sim.Event) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return
	}
	if sw.err = writeLine(sw.bw, FromEvent(e)); sw.err == nil {
		sw.n++
	}
}

// Flush forces buffered records to the underlying writer and, when the sink
// supports it, to stable storage. It returns the sticky error state.
func (sw *StreamWriter) Flush() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.flushLocked()
}

func (sw *StreamWriter) flushLocked() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.err = sw.bw.Flush(); sw.err == nil && sw.s != nil {
		sw.err = sw.s.Sync()
	}
	return sw.err
}

// Close flushes; the caller owns (and closes) the underlying file.
func (sw *StreamWriter) Close() error { return sw.Flush() }

// Err returns the first write error, if any.
func (sw *StreamWriter) Err() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.err
}

// Count returns how many records were written (buffered or flushed).
func (sw *StreamWriter) Count() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.n
}

// writeLine marshals v as one JSONL line. encoding/json emits struct fields
// in declaration order and sorts map keys, so journal bytes are a pure
// function of the values — the property the byte-identical replay check
// rests on.
func writeLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJournal writes a complete journal (header plus records) in exactly
// the format Writer produces — the regeneration path the byte-identical
// replay check compares against.
func WriteJournal(w io.Writer, hdr Header, recs []Record) error {
	if err := writeLine(w, hdr); err != nil {
		return err
	}
	for i := range recs {
		if err := writeLine(w, recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// TruncatedError reports a journal whose final line did not parse — the
// signature of a writer killed mid-line (crash, SIGKILL, full disk). The
// valid prefix is still returned alongside it, so tools can diagnose how far
// the run got: Records valid records survive, the last of which has causal
// identity LastCID. A parse failure with intact lines after it is NOT
// truncation — that is corruption, reported as a plain error.
type TruncatedError struct {
	// Line is the 1-based line number of the unparseable tail line.
	Line int
	// Records is how many valid records precede the truncation point.
	Records int
	// LastCID is the causal identity of the last fully written record
	// (0 when the journal truncated before any record survived).
	LastCID uint64
	// Err is the underlying parse error.
	Err error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("trace: journal truncated at line %d (%d intact records, last cid %d): %v",
		e.Line, e.Records, e.LastCID, e.Err)
}

func (e *TruncatedError) Unwrap() error { return e.Err }

// ReadJournal parses a journal stream: the header line, then every record.
// A journal whose final line fails to parse (a writer killed mid-line)
// returns the intact prefix together with a *TruncatedError, so callers
// choose between rejecting the journal and diagnosing the crashed run; any
// other parse failure is a plain error with no records.
func ReadJournal(r io.Reader) (Header, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var hdr Header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, err
		}
		return hdr, nil, fmt.Errorf("trace: empty journal")
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("trace: bad journal header: %w", err)
	}
	if hdr.Version != Version {
		return hdr, nil, fmt.Errorf("trace: journal version %d, want %d", hdr.Version, Version)
	}
	if hdr.Engine != EngineSim && hdr.Engine != EngineRuntime && hdr.Engine != EngineNode {
		return hdr, nil, fmt.Errorf("trace: unknown journal engine %q", hdr.Engine)
	}
	var recs []Record
	var trunc *TruncatedError
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			if trunc == nil {
				trunc = &TruncatedError{Line: line, Err: err}
			}
			continue
		}
		if trunc != nil {
			// An intact record after the bad line: the failure was not a
			// torn tail write.
			return hdr, nil, fmt.Errorf("trace: bad journal record on line %d: %w", trunc.Line, trunc.Err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	if trunc != nil {
		trunc.Records = len(recs)
		if len(recs) > 0 {
			trunc.LastCID = recs[len(recs)-1].CID
		}
		return hdr, recs, trunc
	}
	return hdr, recs, nil
}
