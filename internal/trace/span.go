package trace

import (
	"fmt"
	"strings"
)

// Hop is one reference-forwarding step inside a departure span: a message
// the departing process sent, and what became of it.
type Hop struct {
	// Send is the send (or drop — a send whose target was already gone)
	// record.
	Send Record
	// Outcome is the delivery of that message at the peer; nil when the
	// message was still in flight when the trace ended, or when the send
	// was dropped (Send.Kind is "drop").
	Outcome *Record
}

// Dropped reports whether the hop's send vanished (target already gone).
func (h Hop) Dropped() bool { return h.Send.Kind == "drop" }

// Delivered reports whether the hop's message reached its peer.
func (h Hop) Delivered() bool { return h.Outcome != nil }

// SpanAction is one atomic action the departing process executed: its
// trigger event (timeout or delivery) and the hops it caused.
type SpanAction struct {
	Trigger Record
	Hops    []Hop
}

// Span is one process's departure story, reconstructed from the causal
// links: every action it executed, each forward/delegation hop those
// actions produced, and the exit (FDP) or final sleep (FSP) that ended it.
type Span struct {
	// Proc is the departing process.
	Proc string
	// Actions are the process's executed actions in trace order.
	Actions []SpanAction
	// End is the exit or sleep record that completed the departure, nil if
	// the trace ended with the departure still in progress.
	End *Record
	// Exited reports a committed exit (End is an exit record).
	Exited bool
}

// Hops counts the span's send hops.
func (s *Span) Hops() int {
	n := 0
	for i := range s.Actions {
		n += len(s.Actions[i].Hops)
	}
	return n
}

// StartStep returns the step of the first action (0 for an empty span).
func (s *Span) StartStep() int {
	if len(s.Actions) == 0 {
		if s.End != nil {
			return s.End.Step
		}
		return 0
	}
	return s.Actions[0].Trigger.Step
}

// EndStep returns the step of the span's last event.
func (s *Span) EndStep() int {
	step := s.StartStep()
	if n := len(s.Actions); n > 0 {
		step = s.Actions[n-1].Trigger.Step
		if hops := s.Actions[n-1].Hops; len(hops) > 0 {
			last := hops[len(hops)-1]
			if last.Outcome != nil && last.Outcome.Step > step {
				step = last.Outcome.Step
			}
		}
	}
	if s.End != nil && s.End.Step > step {
		step = s.End.Step
	}
	return step
}

// BuildSpans reconstructs per-leaver departure spans from a journal. A
// departure span exists for every process that exited (FDP) or slept (FSP):
// its trigger events (timeouts and deliveries, linked to hops through
// Event.Parent), each hop's delivery at the peer (linked through the
// message's causal ID), and the terminating exit/sleep. Spans come back in
// trace order of their first event. For an FDP run the span count equals
// the gone count — one complete span per departed leaver.
func BuildSpans(recs []Record) []*Span {
	return BuildSpansFor(recs, nil)
}

// BuildSpansFor is BuildSpans with explicitly seeded departing processes
// (journal proc names, e.g. "p3"): a span is built for every seed whether or
// not the trace contains its exit/sleep. This is the shape a stall dump
// needs — the watchdog knows exactly which leavers are stuck, and the whole
// point of the dump is that their departures never terminated, so discovery
// by terminator records would come up empty. Terminator discovery still adds
// any departing processes beyond the seeds.
func BuildSpansFor(recs []Record, seeds []string) []*Span {
	// Pass 1: seeds first (in caller order), then the departing processes
	// the trace itself reveals (exit or sleep records), in first-event order.
	spanByProc := make(map[string]*Span)
	var spans []*Span
	for _, proc := range seeds {
		if proc != "" && spanByProc[proc] == nil {
			sp := &Span{Proc: proc}
			spanByProc[proc] = sp
			spans = append(spans, sp)
		}
	}
	for i := range recs {
		rec := &recs[i]
		if rec.Kind != "exit" && rec.Kind != "sleep" {
			continue
		}
		if spanByProc[rec.Proc] == nil {
			sp := &Span{Proc: rec.Proc}
			spanByProc[rec.Proc] = sp
			spans = append(spans, sp)
		}
	}
	// Pass 2: attach trigger actions and terminators; index trigger CIDs so
	// hops can find their action.
	actionAt := make(map[uint64]*Span) // trigger CID -> owning span
	for i := range recs {
		rec := &recs[i]
		sp := spanByProc[rec.Proc]
		if sp == nil {
			continue
		}
		switch rec.Kind {
		case "timeout", "deliver":
			sp.Actions = append(sp.Actions, SpanAction{Trigger: *rec})
			actionAt[rec.CID] = sp
			// Activity after a sleep reopens the departure (FSP processes
			// may wake again); only the final sleep terminates the span.
			if sp.End != nil && !sp.Exited {
				sp.End = nil
			}
		case "exit":
			sp.End = rec
			sp.Exited = true
		case "sleep":
			if !sp.Exited {
				sp.End = rec
			}
		}
	}
	// Pass 3: attach hops to their triggering action via Parent, and index
	// each hop's message CID for outcome resolution.
	type hopAt struct {
		span   *Span
		action int
		hop    int
	}
	hopByMsg := make(map[uint64]hopAt)
	for i := range recs {
		rec := &recs[i]
		if rec.Kind != "send" && rec.Kind != "drop" {
			continue
		}
		sp := actionAt[rec.Parent]
		if sp == nil || rec.Proc != sp.Proc {
			continue
		}
		// The owning action is the last one whose trigger CID matches — and
		// since actionAt is keyed by CID, find it by scanning back (actions
		// are appended in trace order, sends follow their trigger).
		ai := -1
		for j := len(sp.Actions) - 1; j >= 0; j-- {
			if sp.Actions[j].Trigger.CID == rec.Parent {
				ai = j
				break
			}
		}
		if ai < 0 {
			continue
		}
		sp.Actions[ai].Hops = append(sp.Actions[ai].Hops, Hop{Send: *rec})
		if rec.Kind == "send" && rec.MsgID != 0 {
			hopByMsg[rec.MsgID] = hopAt{span: sp, action: ai, hop: len(sp.Actions[ai].Hops) - 1}
		}
	}
	// Pass 4: resolve hop outcomes — the delivery record carrying the hop's
	// message CID.
	for i := range recs {
		rec := &recs[i]
		if rec.Kind != "deliver" || rec.MsgID == 0 {
			continue
		}
		if at, ok := hopByMsg[rec.MsgID]; ok {
			at.span.Actions[at.action].Hops[at.hop].Outcome = rec
		}
	}
	return spans
}

// Tree renders the span as an indented text tree: one line per trigger
// action, one nested line per hop, one line for the terminator.
func (s *Span) Tree() string {
	var b strings.Builder
	state := "in progress"
	if s.End != nil {
		state = s.End.Kind
	}
	fmt.Fprintf(&b, "departure %s: steps %d..%d, %d actions, %d hops, %s\n",
		s.Proc, s.StartStep(), s.EndStep(), len(s.Actions), s.Hops(), state)
	for i := range s.Actions {
		a := &s.Actions[i]
		fmt.Fprintf(&b, "  %s\n", recordLine(a.Trigger))
		for _, h := range a.Hops {
			fmt.Fprintf(&b, "    %s\n", recordLine(h.Send))
			if h.Outcome != nil {
				fmt.Fprintf(&b, "      %s\n", recordLine(*h.Outcome))
			}
		}
	}
	if s.End != nil {
		fmt.Fprintf(&b, "  %s\n", recordLine(*s.End))
	}
	return b.String()
}

// SpanTrees renders every span's tree, separated by blank lines — the
// fdpreplay -spans output.
func SpanTrees(spans []*Span) string {
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(sp.Tree())
	}
	return b.String()
}
