package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"fdp/internal/sim"
	"fdp/internal/trace"
)

// TestFlightRingWrap pins the ring semantics: a wrapped recorder keeps
// exactly the most recent capacity events, oldest first, and reports the
// snapshot incomplete (the evicted prefix makes it unreplayable).
func TestFlightRingWrap(t *testing.T) {
	fl := trace.NewFlight(4)
	for i := 1; i <= 10; i++ {
		fl.Record(sim.Event{Kind: sim.EvSend, Step: i, CID: uint64(i)})
	}
	if fl.Len() != 4 || fl.Total() != 10 {
		t.Fatalf("len=%d total=%d, want 4/10", fl.Len(), fl.Total())
	}
	recs, complete := fl.Snapshot()
	if complete {
		t.Fatal("wrapped ring claimed a complete snapshot")
	}
	if len(recs) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if want := uint64(7 + i); r.CID != want {
			t.Fatalf("record %d has cid %d, want %d (oldest-first eviction broken)", i, r.CID, want)
		}
	}
}

// TestFlightUnwrapped: below capacity the snapshot is the entire stream and
// says so.
func TestFlightUnwrapped(t *testing.T) {
	fl := trace.NewFlight(0) // DefaultFlightCap
	for i := 1; i <= 3; i++ {
		fl.Record(sim.Event{Kind: sim.EvDeliver, Step: i, CID: uint64(i)})
	}
	recs, complete := fl.Snapshot()
	if !complete || len(recs) != 3 {
		t.Fatalf("complete=%v len=%d, want true/3", complete, len(recs))
	}
	if recs[0].CID != 1 || recs[2].CID != 3 {
		t.Fatalf("order broken: %+v", recs)
	}
}

// TestFlightSnapshotJournalRoundTrip: WriteSnapshot emits a journal fragment
// ReadJournal accepts, with the header intact.
func TestFlightSnapshotJournalRoundTrip(t *testing.T) {
	fl := trace.NewFlight(8)
	fl.Record(sim.Event{Kind: sim.EvSend, Step: 1, CID: 7})
	hdr := trace.Header{Version: trace.Version, Engine: trace.EngineNode,
		Scenario: testScenario(4, 1), Node: 2, Nodes: 3}
	var buf bytes.Buffer
	complete, err := fl.WriteSnapshot(&buf, hdr)
	if err != nil || !complete {
		t.Fatalf("WriteSnapshot: complete=%v err=%v", complete, err)
	}
	back, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if !reflect.DeepEqual(back, hdr) {
		t.Fatalf("header did not round-trip:\n got %+v\nwant %+v", back, hdr)
	}
	if len(recs) != 1 || recs[0].CID != 7 {
		t.Fatalf("records did not round-trip: %+v", recs)
	}
}

// TestFlightCompleteSnapshotReplays is the flight recorder's reason to
// exist: hooked into a sequential run whose event count stays under the ring
// capacity, the stall-time snapshot is a complete schedule prefix, so the
// byte-identical replay contract holds for it exactly as for a recorded
// journal — a stuck run's flight dump is debuggable with the same fdpreplay
// tooling as a finished run's journal.
func TestFlightCompleteSnapshotReplays(t *testing.T) {
	s := testScenario(12, 5)
	scn, err := s.BuildScenario()
	if err != nil {
		t.Fatalf("BuildScenario: %v", err)
	}
	sched, err := trace.SchedulerByName(s.Scheduler, s.Seed)
	if err != nil {
		t.Fatalf("SchedulerByName: %v", err)
	}
	variant, err := s.SimVariant()
	if err != nil {
		t.Fatalf("SimVariant: %v", err)
	}
	fl := trace.NewFlight(1 << 16)
	scn.World.AddEventHook(fl.Record)
	res := sim.Run(scn.World, sched, sim.RunOptions{Variant: variant, MaxSteps: 50000})
	if !res.Converged {
		t.Fatalf("run did not converge: %+v", res)
	}
	recs, complete := fl.Snapshot()
	if !complete {
		t.Fatalf("ring wrapped at %d events — raise the test capacity", fl.Total())
	}
	hdr := trace.Header{Version: trace.Version, Engine: trace.EngineSim, Scenario: s}
	div, err := trace.VerifyReplay(hdr, recs)
	if err != nil {
		t.Fatalf("VerifyReplay: %v", err)
	}
	if div != nil {
		t.Fatalf("flight snapshot diverged under replay: %v", div)
	}
}
