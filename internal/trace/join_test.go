package trace_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"fdp/internal/sim"
	"fdp/internal/trace"
)

// nodeHeader builds a multi-node header for join tests.
func nodeHeader(node, nodes int) trace.Header {
	return trace.Header{Version: trace.Version, Engine: trace.EngineNode,
		Scenario: testScenario(6, 7), Node: node, Nodes: nodes}
}

// journalBytes renders a journal for the given header and records.
func journalBytes(t *testing.T, hdr trace.Header, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJournal(&buf, hdr, recs); err != nil {
		t.Fatalf("WriteJournal: %v", err)
	}
	return buf.Bytes()
}

func TestReadJournalDiagnosesTruncatedTail(t *testing.T) {
	base := trace.NodeCausalBase(0)
	recs := []trace.Record{
		{Step: 1, Kind: "timeout", Proc: "p1", CID: base + 1, Clock: 1},
		{Step: 2, Kind: "send", Proc: "p1", Peer: "p2", Label: "present", CID: base + 2, MsgID: base + 2, Clock: 2},
		{Step: 3, Kind: "deliver", Proc: "p2", Peer: "p1", Label: "present", CID: base + 3, MsgID: base + 2, Clock: 3},
	}
	whole := journalBytes(t, nodeHeader(0, 1), recs)

	// Chop the journal mid-way through its final line, as a killed writer
	// would leave it.
	cut := bytes.LastIndexByte(whole[:len(whole)-1], '\n') + 10
	hdr, got, err := trace.ReadJournal(bytes.NewReader(whole[:cut]))
	var trunc *trace.TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("want TruncatedError, got %v", err)
	}
	if trunc.Records != 2 || trunc.LastCID != base+2 || trunc.Line != 4 {
		t.Fatalf("truncation diagnosis wrong: %+v", trunc)
	}
	if len(got) != 2 || got[1].CID != base+2 || hdr.Node != 0 || hdr.Nodes != 1 {
		t.Fatalf("intact prefix not returned: hdr=%+v recs=%v", hdr, got)
	}

	// A bad line with an intact record after it is corruption, not
	// truncation: no prefix comes back.
	lines := bytes.SplitAfter(whole, []byte("\n"))
	corrupt := bytes.Join([][]byte{lines[0], lines[1], []byte("{\"step\": garbled\n"), lines[2], lines[3]}, nil)
	_, _, err = trace.ReadJournal(bytes.NewReader(corrupt))
	if err == nil || errors.As(err, &trunc) {
		t.Fatalf("mid-journal corruption misdiagnosed: %v", err)
	}
}

func TestStreamWriterBuffersUntilFlush(t *testing.T) {
	var buf bytes.Buffer
	sw := trace.NewStreamWriter(&buf, nodeHeader(0, 1))
	for i := 0; i < 5; i++ {
		sw.Record(sim.Event{Kind: sim.EvTimeout, CID: trace.NodeCausalBase(0) + uint64(i) + 1})
	}
	if sw.Count() != 5 {
		t.Fatalf("Count = %d, want 5", sw.Count())
	}
	if buf.Len() != 0 {
		t.Fatal("records hit the sink before Flush; writer is not buffering")
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal after flush: %v", err)
	}
	if hdr.Engine != trace.EngineNode || len(recs) != 5 {
		t.Fatalf("flushed journal wrong: engine=%q records=%d", hdr.Engine, len(recs))
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestJoinChecksCrossNodeCausality(t *testing.T) {
	b0, b1 := trace.NodeCausalBase(0), trace.NodeCausalBase(1)
	// Node 0 owns p1 (a leaver that exits); node 1 owns p2. One cross-node
	// message p1→p2, one builder-injected initial message (small CID), and
	// one duplicate delivery of the cross-node message (redial artifact).
	n0 := []trace.Record{
		{Step: 1, Kind: "timeout", Proc: "p1", CID: b0 + 1, Clock: 1},
		{Step: 2, Kind: "send", Proc: "p1", Peer: "p2", Label: "present", CID: b0 + 2, Parent: b0 + 1, MsgID: b0 + 2, Clock: 1},
		{Step: 3, Kind: "exit", Proc: "p1", CID: b0 + 3, Clock: 2},
	}
	n1 := []trace.Record{
		{Step: 1, Kind: "deliver", Proc: "p2", Peer: "", Label: "junk", CID: b1 + 1, MsgID: 2, Clock: 1},
		{Step: 2, Kind: "deliver", Proc: "p2", Peer: "p1", Label: "present", CID: b1 + 2, MsgID: b0 + 2, Clock: 3},
		{Step: 3, Kind: "deliver", Proc: "p2", Peer: "p1", Label: "present", CID: b1 + 3, MsgID: b0 + 2, Clock: 4},
	}
	j, err := trace.Join([]trace.Header{nodeHeader(0, 2), nodeHeader(1, 2)}, [][]trace.Record{n0, n1})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if len(j.Problems) != 0 {
		t.Fatalf("clean journals reported problems: %v", j.Problems)
	}
	if j.Sends != 1 || j.Delivers != 3 || j.Duplicates != 1 {
		t.Fatalf("counts wrong: %+v", j)
	}
	if len(j.Records) != 6 {
		t.Fatalf("merged %d records, want 6", len(j.Records))
	}
	for i := 1; i < len(j.Records); i++ {
		a, b := j.Records[i-1], j.Records[i]
		if a.Clock > b.Clock || (a.Clock == b.Clock && a.CID >= b.CID) {
			t.Fatalf("merged order violated at %d: %+v then %+v", i, a, b)
		}
	}

	// Violations: an orphan delivery, a clock inversion, and a CID reused
	// across nodes must each surface as problems.
	bad1 := append([]trace.Record{}, n1...)
	bad1 = append(bad1,
		trace.Record{Step: 4, Kind: "deliver", Proc: "p2", Peer: "p1", Label: "forward", CID: b1 + 4, MsgID: b1 + 900, Clock: 5},
		trace.Record{Step: 5, Kind: "deliver", Proc: "p1", Peer: "p1", Label: "present", CID: b0 + 1, MsgID: b0 + 2, Clock: 1})
	j, err = trace.Join([]trace.Header{nodeHeader(0, 2), nodeHeader(1, 2)}, [][]trace.Record{n0, bad1})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	wants := []string{"no send record", "not after send clock", "appears in node 0 and node 1", "sent to p2 but delivered at p1"}
	for _, w := range wants {
		found := false
		for _, p := range j.Problems {
			if strings.Contains(p, w) {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing problem %q in %v", w, j.Problems)
		}
	}

	// Mismatched header sets are hard errors.
	if _, err := trace.Join([]trace.Header{nodeHeader(0, 2), nodeHeader(0, 2)}, [][]trace.Record{n0, n1}); err == nil {
		t.Fatal("duplicate node ids accepted")
	}
	other := nodeHeader(1, 2)
	other.Scenario.Seed = 99
	if _, err := trace.Join([]trace.Header{nodeHeader(0, 2), other}, [][]trace.Record{n0, n1}); err == nil {
		t.Fatal("diverging scenarios accepted")
	}
}
