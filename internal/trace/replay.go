package trace

import (
	"fmt"
	"io"

	"fdp/internal/sim"
)

// RecordRun builds the scenario, runs it under its named scheduler, and
// streams the journal to w — the canonical recording path (fdpreplay's
// golden regeneration uses it; the CLI drivers journal through the same
// Writer). opts.Variant is forced from the scenario so the journal is
// self-consistent.
func RecordRun(s Scenario, w io.Writer, opts sim.RunOptions) (sim.RunResult, error) {
	scn, err := s.BuildScenario()
	if err != nil {
		return sim.RunResult{}, err
	}
	sched, err := SchedulerByName(s.Scheduler, s.Seed)
	if err != nil {
		return sim.RunResult{}, err
	}
	if opts.Variant, err = s.SimVariant(); err != nil {
		return sim.RunResult{}, err
	}
	jw := NewWriter(w, Header{Version: Version, Engine: EngineSim, Scenario: s})
	scn.World.AddEventHook(jw.Record)
	res := sim.Run(scn.World, sched, opts)
	return res, jw.Err()
}

// Schedule extracts the executed action sequence from a journal: one action
// per timeout or delivery record, in journal order. Deliveries are
// re-resolved by message sequence number (sim.ValidateAction), the stable
// identity that survives channel reordering. Send/drop/exit/sleep/wake
// records are consequences of these actions, not schedule entries.
func Schedule(recs []Record) ([]sim.Action, error) {
	var out []sim.Action
	for i := range recs {
		rec := &recs[i]
		kind, ok := kindByName(rec.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: record %d has unknown kind %q", i, rec.Kind)
		}
		switch kind {
		case sim.EvTimeout, sim.EvDeliver:
			proc, err := parseRef(rec.Proc)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
			out = append(out, sim.Action{
				Proc:      proc,
				IsTimeout: kind == sim.EvTimeout,
				MsgSeq:    rec.MsgSeq,
			})
		}
	}
	return out, nil
}

// ReplayError reports the point at which a recorded action stopped being
// executable against the rebuilt world — a divergence between the journal
// and this replay (corrupted journal, changed code, or a journal from a
// different build).
type ReplayError struct {
	// ActionIndex is the position in the extracted schedule.
	ActionIndex int
	// Action is the recorded action that failed to validate.
	Action sim.Action
}

// Error implements error.
func (e *ReplayError) Error() string {
	what := fmt.Sprintf("deliver seq=%d to %v", e.Action.MsgSeq, e.Action.Proc)
	if e.Action.IsTimeout {
		what = fmt.Sprintf("timeout of %v", e.Action.Proc)
	}
	return fmt.Sprintf("trace: replay diverged at action %d: %s no longer enabled", e.ActionIndex, what)
}

// Replay re-drives a sequential journal: it rebuilds the recorded scenario
// (BuildScenario), re-executes the recorded timeout/delivery sequence, and
// returns the events the replay emitted, as records. Because the sequential
// engine is deterministic, a faithful journal replays into byte-identical
// records (see VerifyReplay); a journal that stalls returns a *ReplayError.
//
// Only EngineSim journals replay — a runtime journal records one concurrent
// schedule that no sequential re-execution is obligated to reproduce (those
// are aligned with Diff instead).
func Replay(hdr Header, recs []Record) ([]Record, error) {
	if hdr.Engine != EngineSim {
		return nil, fmt.Errorf("trace: cannot replay %q journal (only %q journals are deterministic)", hdr.Engine, EngineSim)
	}
	scn, err := hdr.Scenario.BuildScenario()
	if err != nil {
		return nil, err
	}
	schedule, err := Schedule(recs)
	if err != nil {
		return nil, err
	}
	var replayed []Record
	scn.World.AddEventHook(func(e sim.Event) {
		replayed = append(replayed, FromEvent(e))
	})
	for i, a := range schedule {
		if !scn.World.ValidateAction(&a) {
			return replayed, &ReplayError{ActionIndex: i, Action: a}
		}
		scn.World.Execute(a)
	}
	return replayed, nil
}

// VerifyReplay replays a sequential journal and aligns the result against
// the recording by causal ID. It returns nil iff the replay reproduced the
// journal exactly — the replay determinism contract (DESIGN.md §11). On
// divergence the returned *Divergence pinpoints the first differing event.
func VerifyReplay(hdr Header, recs []Record) (*Divergence, error) {
	replayed, err := Replay(hdr, recs)
	if err != nil {
		return nil, err
	}
	return DiffStrict(recs, replayed), nil
}
