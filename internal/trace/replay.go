package trace

import (
	"fmt"
	"io"

	"fdp/internal/churn"
	"fdp/internal/faults"
	"fdp/internal/sim"
)

// RecordRun builds the scenario, runs it under its named scheduler, and
// writes the journal to w — the canonical recording path (fdpreplay's
// golden regeneration uses it; the CLI drivers journal through the same
// machinery). opts.Variant is forced from the scenario so the journal is
// self-consistent.
//
// Scenarios with Strikes run in segments: each wave i fires once the world
// reaches its After step (or as soon as the run stalls before it), seeded
// with faults.WaveSeed(s.Seed, i). The header is written last so it can
// record each wave at the step it ACTUALLY fired — the step Replay
// re-applies it at. Waves that never fired (the run aborted on a safety
// violation first) are dropped from the header: the journal describes the
// run that happened.
func RecordRun(s Scenario, w io.Writer, opts sim.RunOptions) (sim.RunResult, error) {
	scn, err := s.BuildScenario()
	if err != nil {
		return sim.RunResult{}, err
	}
	sched, err := SchedulerByName(s.Scheduler, s.Seed)
	if err != nil {
		return sim.RunResult{}, err
	}
	if opts.Variant, err = s.SimVariant(); err != nil {
		return sim.RunResult{}, err
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 1 << 20
	}
	var recs []Record
	scn.World.AddEventHook(func(e sim.Event) { recs = append(recs, FromEvent(e)) })

	var res sim.RunResult
	fired := make([]StrikeSpec, 0, len(s.Strikes))
	for i, spec := range s.Strikes {
		if spec.After > scn.World.Steps() {
			segment := opts
			segment.MaxSteps = spec.After
			if segment.MaxSteps > opts.MaxSteps {
				segment.MaxSteps = opts.MaxSteps
			}
			res = sim.Run(scn.World, sched, segment)
			if res.SafetyViolation != nil {
				break
			}
		}
		faults.New(spec.Wave().Config, faults.WaveSeed(s.Seed, i)).Strike(scn.World)
		spec.After = scn.World.Steps()
		fired = append(fired, spec)
	}
	if res.SafetyViolation == nil {
		res = sim.Run(scn.World, sched, opts)
	}
	hdr := s
	hdr.Strikes = fired
	if err := WriteJournal(w, Header{Version: Version, Engine: EngineSim, Scenario: hdr}, recs); err != nil {
		return res, err
	}
	return res, nil
}

// Schedule extracts the executed action sequence from a journal: one action
// per timeout or delivery record, in journal order. Deliveries are
// re-resolved by message sequence number (sim.ValidateAction), the stable
// identity that survives channel reordering. Send/drop/exit/sleep/wake
// records are consequences of these actions, not schedule entries.
func Schedule(recs []Record) ([]sim.Action, error) {
	var out []sim.Action
	for i := range recs {
		rec := &recs[i]
		kind, ok := kindByName(rec.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: record %d has unknown kind %q", i, rec.Kind)
		}
		switch kind {
		case sim.EvTimeout, sim.EvDeliver:
			proc, err := parseRef(rec.Proc)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
			out = append(out, sim.Action{
				Proc:      proc,
				IsTimeout: kind == sim.EvTimeout,
				MsgSeq:    rec.MsgSeq,
			})
		}
	}
	return out, nil
}

// ReplayError reports the point at which a recorded action stopped being
// executable against the rebuilt world — a divergence between the journal
// and this replay (corrupted journal, changed code, or a journal from a
// different build).
type ReplayError struct {
	// ActionIndex is the position in the extracted schedule.
	ActionIndex int
	// Action is the recorded action that failed to validate.
	Action sim.Action
}

// Error implements error.
func (e *ReplayError) Error() string {
	what := fmt.Sprintf("deliver seq=%d to %v", e.Action.MsgSeq, e.Action.Proc)
	if e.Action.IsTimeout {
		what = fmt.Sprintf("timeout of %v", e.Action.Proc)
	}
	return fmt.Sprintf("trace: replay diverged at action %d: %s no longer enabled", e.ActionIndex, what)
}

// Replay re-drives a sequential journal: it rebuilds the recorded scenario
// (BuildScenario), re-executes the recorded timeout/delivery sequence, and
// returns the events the replay emitted, as records. Because the sequential
// engine is deterministic, a faithful journal replays into byte-identical
// records (see VerifyReplay); a journal that stalls returns a *ReplayError.
//
// Only EngineSim journals replay — a runtime journal records one concurrent
// schedule that no sequential re-execution is obligated to reproduce (those
// are aligned with Diff instead).
func Replay(hdr Header, recs []Record) ([]Record, error) {
	_, replayed, err := ReplayWorld(hdr, recs)
	return replayed, err
}

// ReplayWorld is Replay plus the terminal state: it returns the rebuilt
// scenario with its world advanced through the recorded schedule, so callers
// can interrogate the outcome (safety, leavers, Φ) and not just the event
// stream. The fuzz shrinker's schedule-truncation predicate lives on this.
func ReplayWorld(hdr Header, recs []Record) (*churn.Scenario, []Record, error) {
	if hdr.Engine != EngineSim {
		return nil, nil, fmt.Errorf("trace: cannot replay %q journal (only %q journals are deterministic)", hdr.Engine, EngineSim)
	}
	scn, err := hdr.Scenario.BuildScenario()
	if err != nil {
		return nil, nil, err
	}
	schedule, err := Schedule(recs)
	if err != nil {
		return nil, nil, err
	}
	var replayed []Record
	scn.World.AddEventHook(func(e sim.Event) {
		replayed = append(replayed, FromEvent(e))
	})
	// Strikes recorded in the header fire at the step they fired during the
	// recording. Striking emits no events and is deterministic per wave seed,
	// so a re-applied strike preserves byte-identical replay.
	strikes := hdr.Scenario.Strikes
	si := 0
	applyDue := func() {
		for si < len(strikes) && strikes[si].After <= scn.World.Steps() {
			faults.New(strikes[si].Wave().Config, faults.WaveSeed(hdr.Scenario.Seed, si)).Strike(scn.World)
			si++
		}
	}
	applyDue()
	for i, a := range schedule {
		if !scn.World.ValidateAction(&a) {
			return scn, replayed, &ReplayError{ActionIndex: i, Action: a}
		}
		scn.World.Execute(a)
		applyDue()
	}
	return scn, replayed, nil
}

// VerifyReplay replays a sequential journal and aligns the result against
// the recording by causal ID. It returns nil iff the replay reproduced the
// journal exactly — the replay determinism contract (DESIGN.md §11). On
// divergence the returned *Divergence pinpoints the first differing event.
func VerifyReplay(hdr Header, recs []Record) (*Divergence, error) {
	replayed, err := Replay(hdr, recs)
	if err != nil {
		return nil, err
	}
	return DiffStrict(recs, replayed), nil
}
