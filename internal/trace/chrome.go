package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Only the fields this exporter uses
// are modeled.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// chromePid is the single "process" the export uses; engine processes map
// to threads so they stack as swim lanes in one group.
const chromePid = 1

// BuildChrome converts a journal into a Chrome trace: every record becomes
// a complete event ("X", 1µs, one thread lane per engine process, logical
// steps as microseconds) and every departure span an async begin/end pair
// ("b"/"e", category "departure") stretching from the leaver's first
// trigger to its exit or final sleep.
func BuildChrome(hdr Header, recs []Record) ChromeTrace {
	tr := ChromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"engine":   hdr.Engine,
			"scenario": fmt.Sprintf("n=%d %s leave=%g %s variant=%s oracle=%s seed=%d", hdr.Scenario.N, hdr.Scenario.Topology, hdr.Scenario.LeaveFraction, hdr.Scenario.Pattern, hdr.Scenario.Variant, hdr.Scenario.Oracle, hdr.Scenario.Seed),
		},
		// Never null, even for an empty journal: some loaders reject
		// {"traceEvents": null}.
		TraceEvents: []ChromeEvent{},
	}
	// Thread metadata: one named lane per process, ordered by index.
	var procs []string
	seen := make(map[string]bool)
	for i := range recs {
		if p := recs[i].Proc; p != "" && !seen[p] {
			seen[p] = true
			procs = append(procs, p)
		}
	}
	sort.Slice(procs, func(i, j int) bool { return procTid(procs[i]) < procTid(procs[j]) })
	for _, p := range procs {
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: procTid(p),
			Args: map[string]any{"name": p},
		})
	}
	// One complete event per record.
	for i := range recs {
		rec := &recs[i]
		name := rec.Kind
		if rec.Label != "" {
			name = rec.Kind + " " + rec.Label
		}
		args := map[string]any{"cid": rec.CID, "clock": rec.Clock}
		if rec.Parent != 0 {
			args["parent"] = rec.Parent
		}
		if rec.MsgID != 0 {
			args["msg"] = rec.MsgID
		}
		if rec.Peer != "" {
			args["peer"] = rec.Peer
		}
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: name, Cat: "event", Ph: "X",
			Ts: int64(rec.Step), Dur: 1,
			Pid: chromePid, Tid: procTid(rec.Proc),
			Args: args,
		})
	}
	// One async span per departure.
	for _, sp := range BuildSpans(recs) {
		state := "in progress"
		if sp.End != nil {
			state = sp.End.Kind
		}
		name := "departure " + sp.Proc
		id := sp.Proc
		tid := procTid(sp.Proc)
		tr.TraceEvents = append(tr.TraceEvents,
			ChromeEvent{
				Name: name, Cat: "departure", Ph: "b", ID: id,
				Ts: int64(sp.StartStep()), Pid: chromePid, Tid: tid,
				Args: map[string]any{"hops": sp.Hops(), "actions": len(sp.Actions), "state": state},
			},
			ChromeEvent{
				Name: name, Cat: "departure", Ph: "e", ID: id,
				Ts: int64(sp.EndStep()), Pid: chromePid, Tid: tid,
			},
		)
	}
	return tr
}

// procTid maps "p7" to thread id 7; unparseable names get lane 0.
func procTid(proc string) int {
	var idx int
	if _, err := fmt.Sscanf(proc, "p%d", &idx); err != nil {
		return 0
	}
	return idx
}

// WriteChrome writes the journal as indented Chrome trace-event JSON.
func WriteChrome(w io.Writer, hdr Header, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildChrome(hdr, recs))
}
