package trace

import (
	"fmt"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/faults"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

// Scenario is the construction recipe of a recorded run, embedded in every
// journal header. It is the plain-data image of churn.Config: a journal is
// self-describing — ScenarioWorld rebuilds the exact initial world (same
// references, same topology, same corruption, same initial messages with the
// same causal identities), which is what makes sequential journals
// deterministically replayable.
type Scenario struct {
	N             int     `json:"n"`
	Topology      string  `json:"topology"`
	LeaveFraction float64 `json:"leave"`
	Pattern       string  `json:"pattern"`
	Variant       string  `json:"variant"` // "FDP" or "FSP"
	// Oracle is the oracle's Name(); empty means no oracle. Stateful oracles
	// (SINGLE~timeout) are rebuilt with their default parameters, which the
	// recording side must therefore use.
	Oracle string `json:"oracle,omitempty"`
	Seed   int64  `json:"seed"`
	// Scheduler is provenance only: replay re-drives the recorded action
	// sequence and never consults a scheduler.
	Scheduler string `json:"scheduler,omitempty"`
	// Corruption knobs (churn.Corruption).
	FlipBeliefs   float64 `json:"flip_beliefs,omitempty"`
	RandomAnchors float64 `json:"random_anchors,omitempty"`
	JunkMessages  int     `json:"junk_messages,omitempty"`
	AsleepLeavers float64 `json:"asleep_leavers,omitempty"`
	Components    int     `json:"components,omitempty"`
	// LeaverIndices, when non-empty, pins the leaving set to these node
	// indices instead of drawing it from Pattern/LeaveFraction. The shrinker
	// uses it to drop individual leavers from a failing scenario without
	// perturbing the pattern rng.
	LeaverIndices []int `json:"leavers,omitempty"`
	// Strikes are the mid-run fault waves applied during the recording, in
	// order, each at the sequential step it ACTUALLY fired (which can be
	// earlier than requested if the run went quiescent first). Replay
	// re-applies wave i at the same step boundary with the injector seed
	// faults.WaveSeed(Seed, i), so struck journals stay byte-identical.
	Strikes []StrikeSpec `json:"strikes,omitempty"`
}

// StrikeSpec is the plain-data image of a faults.Wave, embedded in journal
// headers.
type StrikeSpec struct {
	After             int     `json:"after"`
	FlipBeliefs       float64 `json:"flip_beliefs,omitempty"`
	ScrambleAnchors   float64 `json:"scramble_anchors,omitempty"`
	JunkMessages      int     `json:"junk_messages,omitempty"`
	DuplicateMessages int     `json:"duplicate_messages,omitempty"`
}

// StrikeSpecFor captures a fault wave as a journal strike spec.
func StrikeSpecFor(w faults.Wave) StrikeSpec {
	return StrikeSpec{
		After:             w.After,
		FlipBeliefs:       w.FlipBeliefs,
		ScrambleAnchors:   w.ScrambleAnchors,
		JunkMessages:      w.JunkMessages,
		DuplicateMessages: w.DuplicateMessages,
	}
}

// Wave is the inverse of StrikeSpecFor.
func (sp StrikeSpec) Wave() faults.Wave {
	return faults.Wave{
		After: sp.After,
		Config: faults.Config{
			FlipBeliefs:       sp.FlipBeliefs,
			ScrambleAnchors:   sp.ScrambleAnchors,
			JunkMessages:      sp.JunkMessages,
			DuplicateMessages: sp.DuplicateMessages,
		},
	}
}

// ScenarioFor captures a churn config (plus scheduler provenance) as a
// journal scenario.
func ScenarioFor(cfg churn.Config, scheduler string) Scenario {
	s := Scenario{
		N:             cfg.N,
		Topology:      cfg.Topology.String(),
		LeaveFraction: cfg.LeaveFraction,
		Pattern:       cfg.Pattern.String(),
		Variant:       cfg.Variant.String(),
		Seed:          cfg.Seed,
		Scheduler:     scheduler,
		FlipBeliefs:   cfg.Corrupt.FlipBeliefs,
		RandomAnchors: cfg.Corrupt.RandomAnchors,
		JunkMessages:  cfg.Corrupt.JunkMessages,
		AsleepLeavers: cfg.Corrupt.AsleepLeavers,
		Components:    cfg.Components,
		LeaverIndices: cfg.LeaverIndices,
	}
	if cfg.Oracle != nil {
		s.Oracle = cfg.Oracle.Name()
	}
	return s
}

// ChurnConfig is the inverse of ScenarioFor: it rebuilds the churn.Config a
// journal header describes.
func (s Scenario) ChurnConfig() (churn.Config, error) {
	topo, err := topologyByName(s.Topology)
	if err != nil {
		return churn.Config{}, err
	}
	pat, err := patternByName(s.Pattern)
	if err != nil {
		return churn.Config{}, err
	}
	variant, err := variantByName(s.Variant)
	if err != nil {
		return churn.Config{}, err
	}
	orc, err := OracleByName(s.Oracle)
	if err != nil {
		return churn.Config{}, err
	}
	return churn.Config{
		N:             s.N,
		Topology:      topo,
		LeaveFraction: s.LeaveFraction,
		Pattern:       pat,
		Corrupt: churn.Corruption{
			FlipBeliefs:   s.FlipBeliefs,
			RandomAnchors: s.RandomAnchors,
			JunkMessages:  s.JunkMessages,
			AsleepLeavers: s.AsleepLeavers,
		},
		Variant:       variant,
		Oracle:        orc,
		Seed:          s.Seed,
		Components:    s.Components,
		LeaverIndices: s.LeaverIndices,
	}, nil
}

// BuildScenario rebuilds the recorded scenario: the same churn.Build call
// the recording side made, so references, topology, corruption and the
// causal identities of initial messages all match the recording.
func (s Scenario) BuildScenario() (*churn.Scenario, error) {
	cfg, err := s.ChurnConfig()
	if err != nil {
		return nil, err
	}
	return churn.TryBuild(cfg)
}

// topologyByName inverts churn.Topology.String.
func topologyByName(name string) (churn.Topology, error) {
	for _, t := range churn.Topologies() {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown topology %q", name)
}

// patternByName inverts churn.LeavePattern.String.
func patternByName(name string) (churn.LeavePattern, error) {
	for _, p := range churn.Patterns() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown leave pattern %q", name)
}

// variantByName inverts core.Variant.String.
func variantByName(name string) (core.Variant, error) {
	switch name {
	case core.VariantFDP.String():
		return core.VariantFDP, nil
	case core.VariantFSP.String():
		return core.VariantFSP, nil
	}
	return 0, fmt.Errorf("trace: unknown variant %q", name)
}

// oracleRegistry holds extra oracle constructors registered at runtime —
// test-only oracles (e.g. the fuzzer's deliberately broken mutants) whose
// journals must still replay.
var oracleRegistry = map[string]func() sim.Oracle{}

// RegisterOracle makes journals recorded under a non-built-in oracle
// replayable: OracleByName consults the registry after the built-ins. Not
// safe for concurrent use; register during setup. Registering a built-in
// name has no effect (built-ins win).
func RegisterOracle(name string, factory func() sim.Oracle) {
	oracleRegistry[name] = factory
}

// OracleByName rebuilds an oracle from its Name(). The empty name is the
// nil oracle. Stateful oracles come back with default parameters.
func OracleByName(name string) (sim.Oracle, error) {
	switch name {
	case "":
		return nil, nil
	case oracle.Single{}.Name():
		return oracle.Single{}, nil
	case oracle.NIDEC{}.Name():
		return oracle.NIDEC{}, nil
	case oracle.ExitSafe{}.Name():
		return oracle.ExitSafe{}, nil
	case oracle.EC{}.Name():
		return oracle.EC{}, nil
	case oracle.Always(true).Name():
		return oracle.Always(true), nil
	case oracle.Always(false).Name():
		return oracle.Always(false), nil
	case (&oracle.TimeoutSingle{}).Name():
		return oracle.NewTimeoutSingle(0), nil
	}
	if factory, ok := oracleRegistry[name]; ok {
		return factory(), nil
	}
	return nil, fmt.Errorf("trace: unknown oracle %q", name)
}

// SimVariant maps the scenario variant to the run driver's legitimacy
// predicate.
func (s Scenario) SimVariant() (sim.Variant, error) {
	v, err := variantByName(s.Variant)
	if err != nil {
		return 0, err
	}
	if v == core.VariantFSP {
		return sim.FSP, nil
	}
	return sim.FDP, nil
}

// SchedulerByName builds a scheduler from its Name() and the scenario seed.
// Recording drivers use it so the name they stamp into the header is the
// name they actually ran.
func SchedulerByName(name string, seed int64) (sim.Scheduler, error) {
	switch name {
	case "random":
		return sim.NewRandomScheduler(seed, 0), nil
	case "rounds":
		return sim.NewRoundScheduler(), nil
	case "adversarial":
		return sim.NewAdversarialScheduler(seed, 0), nil
	case "fifo":
		return sim.NewFIFOScheduler(), nil
	}
	return nil, fmt.Errorf("trace: unknown scheduler %q", name)
}
