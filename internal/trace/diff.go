package trace

import (
	"fmt"
	"strings"
)

// Divergence pinpoints the first event at which two journals disagree,
// after aligning them by causal ID.
type Divergence struct {
	// CID is the causal identity at which the journals part ways.
	CID uint64
	// A and B are the records on each side; nil when the event is missing
	// from that side entirely.
	A, B *Record
	// AIndex and BIndex are the records' positions in their journals (-1
	// when missing).
	AIndex, BIndex int
	// Field names the first differing field when both sides have the event
	// ("" when one side is missing).
	Field string
}

// String renders a one-glance report of the divergence.
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "first divergence at cid=%d", d.CID)
	switch {
	case d.B == nil:
		fmt.Fprintf(&b, ": only in A (record %d): %s", d.AIndex, recordLine(*d.A))
	case d.A == nil:
		fmt.Fprintf(&b, ": only in B (record %d): %s", d.BIndex, recordLine(*d.B))
	default:
		fmt.Fprintf(&b, ", field %q:\n  A record %d: %s\n  B record %d: %s",
			d.Field, d.AIndex, recordLine(*d.A), d.BIndex, recordLine(*d.B))
	}
	return b.String()
}

// recordLine renders one record compactly for divergence reports.
func recordLine(r Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "step=%d %s %s", r.Step, r.Kind, r.Proc)
	if r.Peer != "" {
		fmt.Fprintf(&b, " peer=%s", r.Peer)
	}
	if r.Label != "" {
		fmt.Fprintf(&b, " label=%s", r.Label)
	}
	fmt.Fprintf(&b, " cid=%d", r.CID)
	if r.Parent != 0 {
		fmt.Fprintf(&b, " parent=%d", r.Parent)
	}
	if r.MsgID != 0 {
		fmt.Fprintf(&b, " msg=%d", r.MsgID)
	}
	fmt.Fprintf(&b, " clock=%d", r.Clock)
	return b.String()
}

// Diff aligns two journals by causal ID and returns the first diverging
// event, or nil if they agree causally. Two aligned records diverge when a
// causal field differs: Kind, Proc, Peer, Label, Parent or MsgID. Schedule-
// dependent coordinates (Step, Clock, MsgSeq, Age, Depth) are deliberately
// not compared, so a sequential journal and a concurrent one — or two
// concurrent runs — can be diffed for causal disagreement without drowning
// in timing noise. For the stricter byte-level contract use DiffStrict.
//
// "First" means: the earliest record of A (in journal order) that is
// missing from B or disagrees with its B counterpart; if A is entirely
// contained in B, the earliest record of B that A lacks.
func Diff(a, b []Record) *Divergence {
	return diff(a, b, causalFieldDiff)
}

// DiffStrict aligns by causal ID like Diff but compares every field,
// including Step and Clock. A nil result means the journals are record-for-
// record identical — the replay determinism contract.
func DiffStrict(a, b []Record) *Divergence {
	return diff(a, b, strictFieldDiff)
}

func diff(a, b []Record, fieldDiff func(x, y *Record) string) *Divergence {
	byCID := make(map[uint64]int, len(b))
	for i := range b {
		if _, dup := byCID[b[i].CID]; !dup {
			byCID[b[i].CID] = i
		}
	}
	matched := make([]bool, len(b))
	for i := range a {
		j, ok := byCID[a[i].CID]
		if !ok {
			return &Divergence{CID: a[i].CID, A: &a[i], AIndex: i, BIndex: -1}
		}
		matched[j] = true
		if f := fieldDiff(&a[i], &b[j]); f != "" {
			return &Divergence{CID: a[i].CID, A: &a[i], B: &b[j], AIndex: i, BIndex: j, Field: f}
		}
	}
	for j := range b {
		if !matched[j] {
			return &Divergence{CID: b[j].CID, B: &b[j], AIndex: -1, BIndex: j}
		}
	}
	return nil
}

// causalFieldDiff names the first differing schedule-independent field.
func causalFieldDiff(x, y *Record) string {
	switch {
	case x.Kind != y.Kind:
		return "kind"
	case x.Proc != y.Proc:
		return "proc"
	case x.Peer != y.Peer:
		return "peer"
	case x.Label != y.Label:
		return "label"
	case x.Parent != y.Parent:
		return "parent"
	case x.MsgID != y.MsgID:
		return "msg"
	}
	return ""
}

// strictFieldDiff names the first differing field of any kind.
func strictFieldDiff(x, y *Record) string {
	if f := causalFieldDiff(x, y); f != "" {
		return f
	}
	switch {
	case x.Step != y.Step:
		return "step"
	case x.MsgSeq != y.MsgSeq:
		return "mseq"
	case x.Clock != y.Clock:
		return "clock"
	case x.Age != y.Age:
		return "age"
	case x.Depth != y.Depth:
		return "depth"
	case x.Note != y.Note:
		return "note"
	}
	return ""
}
