package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Joined is the result of merging the per-node journals of one multi-node
// run (engine "node") into a single causally ordered stream.
type Joined struct {
	// Scenario is the shared construction recipe all nodes agreed on.
	Scenario Scenario
	// Nodes is the run's node count.
	Nodes int
	// Records holds every node's records merged and ordered by (Clock,
	// CID). Lamport clocks respect happens-before, so the merged order is
	// a legal serialization of the causal partial order; the CID tiebreak
	// makes it total and deterministic.
	Records []Record
	// Sends and Delivers count the matched cross-checkable records.
	Sends, Delivers int
	// Duplicates counts redundant deliveries — the same message delivered
	// to the same process more than once. The wire transport can duplicate
	// a frame when a redial retransmits one the peer had already processed,
	// so duplicates are reported but are not Problems.
	Duplicates int
	// Problems lists causal-invariant violations: CID collisions,
	// deliveries without a matching send, mismatched send/deliver
	// endpoints or labels, and non-increasing Lamport clocks across a
	// send→deliver edge. Empty means the journals join cleanly.
	Problems []string
}

// Join merges per-node journals from one multi-node run and cross-checks
// the causal invariants that must hold across node boundaries. The headers
// must all carry engine "node", identical scenarios, and node ids forming a
// permutation of 0..n-1; anything else is a hard error (the journals are
// not slices of one run). Invariant violations inside a well-formed set are
// reported in Joined.Problems, not as an error.
//
// Message identities below NodeCausalBase(0) are builder-assigned initial
// in-flight messages: each owner node injects its own without a send event,
// so they are exempt from send-record matching (a second node delivering
// one would be a CID collision on the deliver events' own identities, still
// caught).
func Join(hdrs []Header, parts [][]Record) (*Joined, error) {
	if len(hdrs) == 0 || len(hdrs) != len(parts) {
		return nil, fmt.Errorf("trace: join needs matching headers and record sets, got %d/%d", len(hdrs), len(parts))
	}
	scen, err := json.Marshal(hdrs[0].Scenario)
	if err != nil {
		return nil, err
	}
	seenNode := make([]bool, len(hdrs))
	for i, h := range hdrs {
		if h.Engine != EngineNode {
			return nil, fmt.Errorf("trace: journal %d has engine %q, want %q", i, h.Engine, EngineNode)
		}
		if h.Nodes != len(hdrs) {
			return nil, fmt.Errorf("trace: journal %d expects %d nodes, %d journals given", i, h.Nodes, len(hdrs))
		}
		if h.Node < 0 || h.Node >= len(hdrs) || seenNode[h.Node] {
			return nil, fmt.Errorf("trace: journal %d has bad or duplicate node id %d", i, h.Node)
		}
		seenNode[h.Node] = true
		s, err := json.Marshal(h.Scenario)
		if err != nil {
			return nil, err
		}
		if string(s) != string(scen) {
			return nil, fmt.Errorf("trace: journal %d scenario differs from journal 0", i)
		}
	}

	j := &Joined{Scenario: hdrs[0].Scenario, Nodes: len(hdrs)}
	total := 0
	for _, rs := range parts {
		total += len(rs)
	}
	j.Records = make([]Record, 0, total)

	// Pass 1: merge, check event-CID uniqueness, index sends.
	cidOwner := make(map[uint64]int, total)
	sends := make(map[uint64]Record)
	for node, rs := range parts {
		for _, r := range rs {
			if prev, dup := cidOwner[r.CID]; dup {
				j.problem("cid %d appears in node %d and node %d journals", r.CID, prev, node)
			} else {
				cidOwner[r.CID] = node
			}
			if r.Kind == "send" {
				j.Sends++
				sends[r.MsgID] = r
			}
			j.Records = append(j.Records, r)
		}
	}

	// Pass 2: every engine-stamped delivery must causally follow a matching
	// send, wherever it was recorded.
	delivered := make(map[[2]string]int) // (msgID, receiver) → count
	for node, rs := range parts {
		for _, r := range rs {
			if r.Kind != "deliver" {
				continue
			}
			j.Delivers++
			key := [2]string{fmt.Sprint(r.MsgID), r.Proc}
			delivered[key]++
			if delivered[key] > 1 {
				j.Duplicates++
			}
			if r.MsgID < NodeCausalBase(0) {
				continue // builder-injected initial message: no send event exists
			}
			s, ok := sends[r.MsgID]
			if !ok {
				j.problem("node %d delivered msg %d to %s with no send record", node, r.MsgID, r.Proc)
				continue
			}
			if s.Label != r.Label {
				j.problem("msg %d label mismatch: sent %q, delivered %q", r.MsgID, s.Label, r.Label)
			}
			if s.Peer != r.Proc {
				j.problem("msg %d sent to %s but delivered at %s", r.MsgID, s.Peer, r.Proc)
			}
			if s.Proc != r.Peer {
				j.problem("msg %d sent by %s but delivery names sender %s", r.MsgID, s.Proc, r.Peer)
			}
			if r.Clock <= s.Clock {
				j.problem("msg %d delivered at clock %d, not after send clock %d", r.MsgID, r.Clock, s.Clock)
			}
		}
	}

	sort.Slice(j.Records, func(a, b int) bool {
		ra, rb := &j.Records[a], &j.Records[b]
		if ra.Clock != rb.Clock {
			return ra.Clock < rb.Clock
		}
		return ra.CID < rb.CID
	})
	return j, nil
}

const maxProblems = 200

func (j *Joined) problem(format string, args ...any) {
	if len(j.Problems) == maxProblems {
		j.Problems = append(j.Problems, "further problems suppressed")
	}
	if len(j.Problems) > maxProblems {
		return
	}
	j.Problems = append(j.Problems, fmt.Sprintf(format, args...))
}
