package trace_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"fdp/internal/churn"
	"fdp/internal/diffval"
	"fdp/internal/oracle"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

func testScenario(n int, seed int64) trace.Scenario {
	return trace.Scenario{
		N:             n,
		Topology:      "line",
		LeaveFraction: 0.3,
		Pattern:       "random",
		Variant:       "FDP",
		Oracle:        "SINGLE",
		Seed:          seed,
		Scheduler:     "random",
	}
}

// record runs the scenario to completion and returns the journal bytes plus
// the parsed form.
func record(t *testing.T, s trace.Scenario, maxSteps int) ([]byte, trace.Header, []trace.Record, sim.RunResult) {
	t.Helper()
	var buf bytes.Buffer
	res, err := trace.RecordRun(s, &buf, sim.RunOptions{MaxSteps: maxSteps})
	if err != nil {
		t.Fatalf("RecordRun: %v", err)
	}
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	return buf.Bytes(), hdr, recs, res
}

func TestScenarioRoundTrip(t *testing.T) {
	cfg := churn.Config{
		N: 9, Topology: churn.TopoRing, LeaveFraction: 0.5,
		Pattern: churn.LeaveArticulation,
		Corrupt: churn.Corruption{FlipBeliefs: 0.1, RandomAnchors: 0.2, JunkMessages: 3},
		Oracle:  oracle.NIDEC{}, Seed: 11, Components: 2,
	}
	s := trace.ScenarioFor(cfg, "fifo")
	back, err := s.ChurnConfig()
	if err != nil {
		t.Fatalf("ChurnConfig: %v", err)
	}
	if back.N != cfg.N || back.Topology != cfg.Topology || back.LeaveFraction != cfg.LeaveFraction ||
		back.Pattern != cfg.Pattern || back.Corrupt != cfg.Corrupt || back.Variant != cfg.Variant ||
		back.Seed != cfg.Seed || back.Components != cfg.Components {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, cfg)
	}
	if back.Oracle == nil || back.Oracle.Name() != "NIDEC" {
		t.Fatalf("oracle did not round-trip: %v", back.Oracle)
	}
	if _, err := (trace.Scenario{N: 3, Topology: "moebius", Pattern: "random", Variant: "FDP"}).ChurnConfig(); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := trace.OracleByName("DELPHI"); err == nil {
		t.Fatal("unknown oracle accepted")
	}
	if _, err := trace.SchedulerByName("chaotic", 1); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	s := testScenario(12, 3)
	raw, hdr, recs, res := record(t, s, 50000)
	if !res.Converged {
		t.Fatalf("run did not converge in %d steps", res.Steps)
	}
	if hdr.Version != trace.Version || hdr.Engine != trace.EngineSim || !reflect.DeepEqual(hdr.Scenario, s) {
		t.Fatalf("header did not round-trip: %+v", hdr)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	// Re-serialization is byte-stable.
	var buf bytes.Buffer
	if err := trace.WriteJournal(&buf, hdr, recs); err != nil {
		t.Fatalf("WriteJournal: %v", err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatal("read+rewrite changed journal bytes")
	}
	// Causal identities are unique and deliveries carry their message.
	seen := make(map[uint64]int, len(recs))
	for i, r := range recs {
		if r.CID == 0 {
			t.Fatalf("record %d has no CID: %+v", i, r)
		}
		if j, dup := seen[r.CID]; dup {
			t.Fatalf("records %d and %d share cid %d", j, i, r.CID)
		}
		seen[r.CID] = i
		if r.Kind == "deliver" && r.MsgID == 0 {
			t.Fatalf("delivery without message identity: %+v", r)
		}
	}
}

func TestReplayByteIdentical(t *testing.T) {
	s := testScenario(12, 5)
	raw, hdr, recs, _ := record(t, s, 50000)
	div, err := trace.VerifyReplay(hdr, recs)
	if err != nil {
		t.Fatalf("VerifyReplay: %v", err)
	}
	if div != nil {
		t.Fatalf("replay diverged: %v", div)
	}
	replayed, err := trace.Replay(hdr, recs)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJournal(&buf, hdr, replayed); err != nil {
		t.Fatalf("WriteJournal: %v", err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatal("replayed journal is not byte-identical to the recording")
	}
}

func TestReplayRejectsRuntimeJournal(t *testing.T) {
	hdr := trace.Header{Version: trace.Version, Engine: trace.EngineRuntime, Scenario: testScenario(4, 1)}
	if _, err := trace.Replay(hdr, nil); err == nil {
		t.Fatal("runtime journal replayed")
	}
}

func TestReplayStallsOnPerturbedSchedule(t *testing.T) {
	s := testScenario(12, 7)
	_, hdr, recs, _ := record(t, s, 50000)
	perturbed := append([]trace.Record(nil), recs...)
	target := -1
	for i := range perturbed {
		if perturbed[i].Kind == "deliver" {
			target = i
		}
	}
	if target < 0 {
		t.Fatal("no delivery to perturb")
	}
	perturbed[target].MsgSeq = 1 << 60 // no such message: the action can never validate
	_, err := trace.Replay(hdr, perturbed)
	var re *trace.ReplayError
	if !errors.As(err, &re) {
		t.Fatalf("want ReplayError, got %v", err)
	}
	// The failing action is the perturbed delivery — count schedule entries
	// up to and including target.
	want := 0
	for i := 0; i <= target; i++ {
		if perturbed[i].Kind == "timeout" || perturbed[i].Kind == "deliver" {
			want++
		}
	}
	if re.ActionIndex != want-1 {
		t.Fatalf("stall at action %d, want %d", re.ActionIndex, want-1)
	}
}

func TestDiffPinpointsFirstDivergence(t *testing.T) {
	s := testScenario(12, 9)
	_, _, recs, _ := record(t, s, 50000)
	if len(recs) < 20 {
		t.Fatalf("journal too short: %d records", len(recs))
	}

	// Field perturbation: the first difference is reported by CID and field.
	perturbed := append([]trace.Record(nil), recs...)
	k := len(perturbed) / 2
	perturbed[k].Proc = "p999"
	div := trace.Diff(recs, perturbed)
	if div == nil {
		t.Fatal("perturbation not detected")
	}
	if div.CID != recs[k].CID || div.Field != "proc" || div.AIndex != k || div.BIndex != k {
		t.Fatalf("wrong divergence: %+v (perturbed record %d cid=%d)", div, k, recs[k].CID)
	}
	if !strings.Contains(div.String(), "proc") {
		t.Fatalf("report does not name the field: %s", div)
	}

	// Missing event: the first unmatched CID is reported.
	missing := append(append([]trace.Record(nil), recs[:k]...), recs[k+1:]...)
	div = trace.Diff(recs, missing)
	if div == nil {
		t.Fatal("missing record not detected")
	}
	if div.CID != recs[k].CID || div.BIndex != -1 {
		t.Fatalf("wrong divergence for missing record: %+v", div)
	}

	// Schedule-dependent fields do not trip the causal diff...
	noisy := append([]trace.Record(nil), recs...)
	noisy[k].Step += 1000
	noisy[k].Clock += 7
	if div := trace.Diff(recs, noisy); div != nil {
		t.Fatalf("causal diff tripped on timing noise: %+v", div)
	}
	// ...but the strict diff does.
	if div := trace.DiffStrict(recs, noisy); div == nil || div.CID != recs[k].CID {
		t.Fatalf("strict diff missed timing perturbation: %+v", div)
	}

	if div := trace.Diff(recs, recs); div != nil {
		t.Fatalf("self-diff diverged: %+v", div)
	}
}

func TestSpansOnePerLeaver64(t *testing.T) {
	s := testScenario(64, 13)
	s.LeaveFraction = 0.25
	_, _, recs, res := record(t, s, 400000)
	if !res.Converged {
		t.Fatalf("64-process run did not converge in %d steps", res.Steps)
	}
	if res.Stats.Exits == 0 {
		t.Fatal("no exits in a converged FDP run with leavers")
	}
	spans := trace.BuildSpans(recs)
	if len(spans) != res.Stats.Exits {
		t.Fatalf("span count %d != gone count %d", len(spans), res.Stats.Exits)
	}
	seen := make(map[string]bool)
	for _, sp := range spans {
		if seen[sp.Proc] {
			t.Fatalf("two spans for %s", sp.Proc)
		}
		seen[sp.Proc] = true
		if !sp.Exited || sp.End == nil || sp.End.Kind != "exit" {
			t.Fatalf("span for %s is not a complete departure: %+v", sp.Proc, sp)
		}
		if len(sp.Actions) == 0 {
			t.Fatalf("span for %s has no trigger actions", sp.Proc)
		}
		if sp.EndStep() < sp.StartStep() {
			t.Fatalf("span for %s ends before it starts", sp.Proc)
		}
		tree := sp.Tree()
		if !strings.Contains(tree, "departure "+sp.Proc) || !strings.Contains(tree, "exit") {
			t.Fatalf("tree rendering incomplete:\n%s", tree)
		}
	}
	if out := trace.SpanTrees(spans); strings.Count(out, "departure ") != len(spans) {
		t.Fatal("SpanTrees did not render every span")
	}
}

func TestChromeExportValidates(t *testing.T) {
	s := testScenario(64, 13)
	s.LeaveFraction = 0.25
	_, hdr, recs, res := record(t, s, 400000)
	spans := trace.BuildSpans(recs)

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, hdr, recs); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var tr trace.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	begins := make(map[string]int)
	ends := make(map[string]int)
	nX := 0
	for i, e := range tr.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		switch e.Ph {
		case "M":
		case "X":
			nX++
			if e.Dur <= 0 {
				t.Fatalf("complete event %d has no duration", i)
			}
		case "b", "e":
			if e.Cat != "departure" || e.ID == "" {
				t.Fatalf("span event %d lacks category or id: %+v", i, e)
			}
			if e.Ph == "b" {
				begins[e.ID]++
			} else {
				ends[e.ID]++
			}
		default:
			t.Fatalf("event %d has unexpected phase %q", i, e.Ph)
		}
	}
	if nX != len(recs) {
		t.Fatalf("%d complete events for %d records", nX, len(recs))
	}
	if len(begins) != len(spans) || len(spans) != res.Stats.Exits {
		t.Fatalf("%d departure spans exported, want %d (= gone count %d)", len(begins), len(spans), res.Stats.Exits)
	}
	for id, n := range begins {
		if n != 1 || ends[id] != 1 {
			t.Fatalf("span %s has %d begins / %d ends", id, n, ends[id])
		}
	}
}

// TestRuntimeJournal records a concurrent-runtime journal through the event
// sink, checks it parses and diffs, and checks replay refuses it.
func TestRuntimeJournal(t *testing.T) {
	s := testScenario(16, 21)
	cfg, err := s.ChurnConfig()
	if err != nil {
		t.Fatalf("ChurnConfig: %v", err)
	}
	scn := churn.Build(cfg)
	want := len(scn.LeavingNodes())
	rt := diffval.MirrorWorld(scn.World, cfg.Oracle)

	var buf bytes.Buffer
	jw := trace.NewWriter(&buf, trace.Header{Version: trace.Version, Engine: trace.EngineRuntime, Scenario: s})
	rt.SetEventSink(jw.Record)
	rt.Start()
	for i := 0; i < 20000 && rt.Gone() < uint64(want); i++ {
		time.Sleep(time.Millisecond)
	}
	rt.Stop()
	if jw.Err() != nil {
		t.Fatalf("journal writer: %v", jw.Err())
	}
	if rt.Gone() != uint64(want) {
		t.Fatalf("runtime settled %d of %d leavers", rt.Gone(), want)
	}

	hdr, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if hdr.Engine != trace.EngineRuntime {
		t.Fatalf("engine = %q", hdr.Engine)
	}
	if jw.Count() != len(recs) {
		t.Fatalf("writer counted %d records, journal has %d", jw.Count(), len(recs))
	}
	if _, err := trace.Replay(hdr, recs); err == nil {
		t.Fatal("runtime journal replayed")
	}
	// Spans still reconstruct (every leaver exited).
	spans := trace.BuildSpans(recs)
	if len(spans) != want {
		t.Fatalf("%d spans for %d leavers", len(spans), want)
	}
	// And a perturbed copy diffs to the exact record.
	perturbed := append([]trace.Record(nil), recs...)
	k := len(perturbed) * 2 / 3
	perturbed[k].Parent = perturbed[k].Parent + 1
	div := trace.Diff(recs, perturbed)
	if div == nil || div.CID != recs[k].CID || div.Field != "parent" {
		t.Fatalf("wrong divergence: %+v", div)
	}
}

// A journal recorded with mid-run strike waves must replay byte-identically:
// the header records each wave at the step it actually fired, and Replay
// re-applies the same corruption (same wave seed) at the same step boundary.
func TestStruckJournalReplaysByteIdentically(t *testing.T) {
	s := testScenario(12, 7)
	s.Strikes = []trace.StrikeSpec{
		{After: 40, FlipBeliefs: 0.5, JunkMessages: 4},
		{After: 120, ScrambleAnchors: 0.6, DuplicateMessages: 3},
	}
	raw, hdr, recs, res := record(t, s, 400000)
	if !res.Converged {
		t.Fatalf("struck run did not converge: %+v", res)
	}
	if len(hdr.Scenario.Strikes) != 2 {
		t.Fatalf("header strikes = %+v", hdr.Scenario.Strikes)
	}
	for i, sp := range hdr.Scenario.Strikes {
		if sp.After < s.Strikes[i].After {
			// Actual fire step can only move earlier if the run stalled; with
			// MaxSteps this large both waves should land exactly on request.
			t.Fatalf("wave %d fired at %d, requested %d", i, sp.After, s.Strikes[i].After)
		}
	}
	div, err := trace.VerifyReplay(hdr, recs)
	if err != nil {
		t.Fatalf("VerifyReplay: %v", err)
	}
	if div != nil {
		t.Fatalf("struck journal diverged on replay: %+v", div)
	}
	// Re-recording the same scenario is byte-identical end to end.
	var buf bytes.Buffer
	if _, err := trace.RecordRun(s, &buf, sim.RunOptions{MaxSteps: 400000}); err != nil {
		t.Fatalf("re-record: %v", err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatal("re-recording a struck scenario changed journal bytes")
	}
}

func TestExplicitLeaversRoundTripThroughJournal(t *testing.T) {
	s := testScenario(8, 3)
	s.LeaveFraction = 0
	s.LeaverIndices = []int{1, 5}
	_, hdr, recs, _ := record(t, s, 400000)
	if got := hdr.Scenario.LeaverIndices; len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("leaver indices did not round-trip: %v", got)
	}
	div, err := trace.VerifyReplay(hdr, recs)
	if err != nil || div != nil {
		t.Fatalf("replay with pinned leavers failed: div=%+v err=%v", div, err)
	}
}

type testOracle struct{ oracle.Single }

func (testOracle) Name() string { return "TEST-REGISTERED" }

func TestOracleRegistry(t *testing.T) {
	if _, err := trace.OracleByName("TEST-REGISTERED"); err == nil {
		t.Fatal("unregistered oracle must not resolve")
	}
	trace.RegisterOracle("TEST-REGISTERED", func() sim.Oracle { return testOracle{} })
	orc, err := trace.OracleByName("TEST-REGISTERED")
	if err != nil {
		t.Fatalf("OracleByName after register: %v", err)
	}
	if orc.Name() != "TEST-REGISTERED" {
		t.Fatalf("wrong oracle: %v", orc.Name())
	}
}

// A scenario whose build cannot succeed surfaces the churn error instead of
// panicking — journals with nonsense headers fail replay cleanly.
func TestBuildScenarioRejectsBadConfig(t *testing.T) {
	s := testScenario(0, 1)
	if _, err := s.BuildScenario(); err == nil {
		t.Fatal("n=0 scenario must not build")
	}
	s = testScenario(6, 1)
	s.Topology = "hypercube"
	if _, err := s.BuildScenario(); err == nil {
		t.Fatal("hypercube n=6 scenario must not build")
	}
}
