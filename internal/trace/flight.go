package trace

import (
	"io"
	"sync"

	"fdp/internal/sim"
)

// Flight is the always-on flight recorder: a bounded ring of the most
// recent engine events, kept so a *stuck* run can produce the same
// artifacts a finished run does. The watchdog (DESIGN.md §16) snapshots it
// on stall into a journal fragment — joinable, diffable and, when the ring
// never wrapped (the snapshot is a complete prefix of the run), replayable
// by cmd/fdpreplay like any committed journal.
//
// Record stores raw sim.Events (no FromEvent conversion, no allocation —
// the ring is pre-allocated at NewFlight); rendering to Records happens at
// snapshot time, off the hot path. Locking: the ring mutex is a leaf, held
// only for the copy-in/copy-out — never across rendering or I/O — which is
// why the snapshot is taken first and written after (see WriteSnapshot).
type Flight struct {
	mu   sync.Mutex //fdp:lockleaf
	buf  []sim.Event
	next int
	n    int
	// total counts every event ever offered, so Snapshot can report
	// whether the ring wrapped (total > len(buf)).
	total uint64
}

// DefaultFlightCap is the ring capacity NewFlight substitutes for a
// non-positive request.
const DefaultFlightCap = 4096

// NewFlight returns a recorder keeping the most recent capacity events.
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &Flight{buf: make([]sim.Event, capacity)}
}

// Record appends one event, evicting the oldest when full. Hook-shaped:
// install with World.AddEventHook or Runtime.SetEventSink. Safe for
// concurrent use; allocation-free.
func (f *Flight) Record(e sim.Event) {
	f.mu.Lock()
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
	}
	if f.n < len(f.buf) {
		f.n++
	}
	f.total++
	f.mu.Unlock()
}

// Len returns how many events the ring currently holds.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Total returns how many events were ever recorded.
func (f *Flight) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot renders the ring's contents, oldest first, as journal records.
// complete reports that the ring never wrapped — the snapshot is the run's
// entire event stream from step 0 and therefore satisfies the replay
// contract (an incomplete snapshot is still joinable and diffable, but a
// replay would need the evicted prefix). The events are copied out under
// the ring mutex and rendered after it is released.
func (f *Flight) Snapshot() (recs []Record, complete bool) {
	f.mu.Lock()
	events := make([]sim.Event, 0, f.n)
	if f.n == len(f.buf) && f.total > uint64(f.n) {
		events = append(events, f.buf[f.next:]...)
		events = append(events, f.buf[:f.next]...)
	} else {
		events = append(events, f.buf[:f.n]...)
	}
	complete = f.total == uint64(f.n)
	f.mu.Unlock()
	return FromEvents(events), complete
}

// WriteSnapshot writes the current snapshot as a journal fragment (header
// plus records, Writer format). It returns the snapshot's completeness
// alongside any write error; a complete fragment verifies byte-identically
// under the replay contract.
func (f *Flight) WriteSnapshot(w io.Writer, hdr Header) (complete bool, err error) {
	recs, complete := f.Snapshot()
	return complete, WriteJournal(w, hdr, recs)
}
