// Package trace is the causal tracing and journaling subsystem shared by
// the sequential simulator and the concurrent runtime (DESIGN.md §11).
//
// Both engines stamp every event with a causal identity (Event.CID), a
// causal parent (Event.Parent) and a Lamport clock (Event.Clock); this
// package turns those streams into durable, analyzable artifacts:
//
//   - an append-only JSONL journal (Writer/ReadJournal) whose header
//     records the scenario, so a recorded sequential run can be re-driven
//     deterministically (Replay) and two runs can be aligned by causal ID
//     (Diff) to the first diverging event;
//   - per-leaver departure spans (BuildSpans): timeout fired → each
//     forward/delegation hop → exit granted — the causal story of one
//     departure;
//   - Chrome trace-event JSON (WriteChrome), loadable in Perfetto or
//     chrome://tracing.
//
// The package obeys the repository's determinism discipline (fdplint
// detiter): no wall-clock reads, no map-iteration-order dependence — a
// journal written twice from the same schedule is byte-identical.
package trace

import (
	"fmt"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Version is the journal format version written into headers.
const Version = 1

// Record is one journal line: a sim.Event rendered with stable, engine-
// independent field names. The zero values of optional fields are omitted
// from the JSON so journals stay compact.
type Record struct {
	// Step is the engine's logical time at emission: the executed-action
	// count (sequential: exact; concurrent: approximate, for ordering a
	// dump only).
	Step int `json:"step"`
	// Kind is the event kind name (sim.EventKind.String).
	Kind string `json:"kind"`
	// Proc is the acting process ("p3").
	Proc string `json:"proc"`
	// Peer is the message target / source where applicable.
	Peer string `json:"peer,omitempty"`
	// Label is the message label where applicable.
	Label string `json:"label,omitempty"`
	// CID is the event's unique causal identity.
	CID uint64 `json:"cid"`
	// Parent is the CID of the causal parent event (see sim.Event.Parent).
	Parent uint64 `json:"parent,omitempty"`
	// MsgID is the message's causal identity on send/deliver/drop.
	MsgID uint64 `json:"msg,omitempty"`
	// MsgSeq is the message's arrival sequence number — the identity the
	// replay driver re-resolves deliveries by.
	MsgSeq uint64 `json:"mseq,omitempty"`
	// Clock is the acting process's Lamport clock at emission.
	Clock uint64 `json:"clock"`
	// Age is, on deliveries, the steps the message spent enqueued.
	Age int `json:"age,omitempty"`
	// Depth is the channel length after the operation.
	Depth int `json:"depth,omitempty"`
	// Note carries sim.Event.Message free-form detail.
	Note string `json:"note,omitempty"`
}

// Header is the first line of every journal.
type Header struct {
	// Version is the journal format version (see Version).
	Version int `json:"v"`
	// Engine identifies the producer: "sim" (deterministically replayable),
	// "runtime" (one concurrent schedule; diffable, not replayable) or
	// "node" (one node's slice of a multi-node run; joinable with its
	// siblings, see Join).
	Engine string `json:"engine"`
	// Scenario is the recorded run's construction recipe.
	Scenario Scenario `json:"scenario"`
	// Node and Nodes identify the writer within a multi-node run: Node is
	// this journal's 0-based node id, Nodes the total node count. Nodes is
	// zero for single-engine journals; Node alone is ambiguous (0 is a
	// valid id and the JSON zero), so Nodes > 0 is the multi-node marker.
	Node  int `json:"node,omitempty"`
	Nodes int `json:"nodes,omitempty"`
}

// Engine names written into journal headers.
const (
	// EngineSim marks a sequential-simulator journal.
	EngineSim = "sim"
	// EngineRuntime marks a concurrent-runtime journal.
	EngineRuntime = "runtime"
	// EngineNode marks one node's journal from a multi-node wire-transport
	// run (cmd/fdpnode).
	EngineNode = "node"
)

// NodeCausalBase returns the causal-ID namespace base for node i of a
// multi-node run. Each node seeds its engine's causal counter to this base,
// so node i mints CIDs in ((i+1)<<40, (i+2)<<40) and CIDs from different
// nodes never collide when journals are joined. Builder-assigned
// initial-message CIDs (small integers, one per initial in-flight message)
// sit below every node's namespace; joins treat message IDs under
// NodeCausalBase(0) as owner-injected and exempt from send-record matching.
func NodeCausalBase(i int) uint64 { return uint64(i+1) << 40 }

// FromEvent renders one engine event as a journal record.
func FromEvent(e sim.Event) Record {
	return Record{
		Step:   e.Step,
		Kind:   e.Kind.String(),
		Proc:   refString(e.Proc),
		Peer:   refString(e.Peer),
		Label:  e.Label,
		CID:    e.CID,
		Parent: e.Parent,
		MsgID:  e.MsgID,
		MsgSeq: e.MsgSeq,
		Clock:  e.Clock,
		Age:    e.Age,
		Depth:  e.Depth,
		Note:   e.Message,
	}
}

// FromEvents renders a captured event slice (e.g. a Recorder's contents or
// parallel.Runtime.TraceEvents) as journal records.
func FromEvents(events []sim.Event) []Record {
	out := make([]Record, len(events))
	for i, e := range events {
		out[i] = FromEvent(e)
	}
	return out
}

// refString renders a reference for the journal ("" for the nil reference,
// so omitempty drops absent peers).
func refString(r ref.Ref) string {
	if r.IsNil() {
		return ""
	}
	return fmt.Sprintf("p%d", ref.Index(r)+1)
}

// parseRef is the inverse of refString; the empty string and "⊥" map to
// the nil reference.
func parseRef(s string) (ref.Ref, error) {
	if s == "" || s == "⊥" {
		return ref.Nil, nil
	}
	var idx int
	if _, err := fmt.Sscanf(s, "p%d", &idx); err != nil || idx < 1 {
		return ref.Nil, fmt.Errorf("trace: bad process name %q", s)
	}
	return ref.ByIndex(idx - 1), nil
}

// kindByName maps event kind names back to sim kinds (inverse of
// sim.EventKind.String).
func kindByName(name string) (sim.EventKind, bool) {
	for k := 0; k < sim.NumEventKinds; k++ {
		if sim.EventKind(k).String() == name {
			return sim.EventKind(k), true
		}
	}
	return 0, false
}
