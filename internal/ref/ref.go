// Package ref provides opaque process references.
//
// The paper restricts attention to copy-store-send protocols: the only
// operations a protocol may perform on a reference are copying it, storing
// it, sending it in a message, and testing two references for equality
// (v = w). In particular no arithmetic, hashing or ordering on references is
// available to a protocol. This package encodes that discipline in the type
// system: Ref is opaque, supports == via Go equality, and exposes nothing
// else to protocol code. Ordering and integer identities exist only for the
// simulator's bookkeeping (package-internal indexes, deterministic
// iteration) and for protocols that *explicitly* require a total order, such
// as overlay linearization, which obtain it through a Key assigned by the
// scenario, never through the reference itself.
package ref

import (
	"fmt"
	"sort"
)

// Ref is an opaque reference to a process, analogous to knowing a node's IP
// address. The zero value is Nil, the "no reference" sentinel (⊥ in the
// paper). Two Refs are equal iff they reference the same process.
type Ref struct {
	id int32
}

// Nil is the absent reference, written ⊥ in the paper.
var Nil = Ref{}

// IsNil reports whether r is the absent reference ⊥.
func (r Ref) IsNil() bool { return r.id == 0 }

// String renders the reference for traces and tests. Protocol code must not
// parse this.
func (r Ref) String() string {
	if r.IsNil() {
		return "⊥"
	}
	return fmt.Sprintf("p%d", r.id)
}

// Space allocates references. It is the simulator's authority on which
// references exist; copy-store-send protocols cannot mint references, they
// can only receive them (Section 1.1).
type Space struct {
	next int32
}

// NewSpace returns an empty reference space.
func NewSpace() *Space { return &Space{next: 1} }

// New mints a fresh reference distinct from all previously minted ones.
func (s *Space) New() Ref {
	r := Ref{id: s.next}
	s.next++
	return r
}

// NewN mints n fresh references.
func (s *Space) NewN(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = s.New()
	}
	return out
}

// Count returns how many references have been minted.
func (s *Space) Count() int { return int(s.next - 1) }

// Index returns a dense 0-based index for r, valid for references minted by
// a Space. It is simulator bookkeeping, not available to protocols.
func Index(r Ref) int { return int(r.id) - 1 }

// ByIndex reconstructs the reference with dense index i (inverse of Index).
func ByIndex(i int) Ref { return Ref{id: int32(i) + 1} }

// Less imposes the simulator's deterministic iteration order. Protocols in
// the paper's model must not call this; overlay protocols that need a total
// order use scenario-assigned keys instead.
func Less(a, b Ref) bool { return a.id < b.id }

// Sort sorts refs in the simulator's deterministic order.
func Sort(refs []Ref) {
	sort.Slice(refs, func(i, j int) bool { return Less(refs[i], refs[j]) })
}

// Set is a set of references with deterministic iteration support.
type Set map[Ref]struct{}

// NewSet builds a set from the given references.
func NewSet(refs ...Ref) Set {
	s := make(Set, len(refs))
	for _, r := range refs {
		s.Add(r)
	}
	return s
}

// Add inserts r. Adding Nil is a no-op: ⊥ is not a process.
func (s Set) Add(r Ref) {
	if r.IsNil() {
		return
	}
	s[r] = struct{}{}
}

// Remove deletes r if present.
func (s Set) Remove(r Ref) { delete(s, r) }

// Has reports membership.
func (s Set) Has(r Ref) bool {
	_, ok := s[r]
	return ok
}

// Len returns the cardinality.
func (s Set) Len() int { return len(s) }

// Sorted returns the members in deterministic order.
func (s Set) Sorted() []Ref {
	out := make([]Ref, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	Sort(out)
	return out
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for r := range s {
		out[r] = struct{}{}
	}
	return out
}

// Equal reports whether two sets contain the same references.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for r := range s {
		if !t.Has(r) {
			return false
		}
	}
	return true
}
