package ref

import "testing"

func TestWireRoundTrip(t *testing.T) {
	s := NewSpace()
	refs := s.NewN(5)
	seen := map[uint32]bool{}
	for _, r := range refs {
		w := Wire(r)
		if w == 0 {
			t.Fatalf("Wire(%v) = 0, reserved for nil", r)
		}
		if seen[w] {
			t.Fatalf("Wire(%v) = %d not unique", r, w)
		}
		seen[w] = true
		if got := FromWire(w); got != r {
			t.Fatalf("FromWire(Wire(%v)) = %v", r, got)
		}
	}
	if Wire(Nil) != 0 {
		t.Fatalf("Wire(Nil) = %d, want 0", Wire(Nil))
	}
	if !FromWire(0).IsNil() {
		t.Fatalf("FromWire(0) is not nil")
	}
}

func TestWireMatchesAcrossSpaces(t *testing.T) {
	// Two spaces built identically (the multi-node contract: every node
	// rebuilds the same scenario) must agree on wire identities.
	a := NewSpace().NewN(4)
	b := NewSpace().NewN(4)
	for i := range a {
		if Wire(a[i]) != Wire(b[i]) {
			t.Fatalf("wire identity %d differs across identically built spaces", i)
		}
	}
}
