package ref

// Wire identity: the serialized form of a reference used by the transport
// layer (fdp/internal/transport) to carry references between OS processes.
//
// A wire identity is a dense uint32 (0 = ⊥) valid only between nodes that
// built their reference spaces identically — which the multi-node harness
// guarantees by rebuilding the same scenario from the same seed on every
// node. The functions live here, next to the other simulator-bookkeeping
// identities (Index/ByIndex), and are equally off-limits to protocol code:
// the refopacity analyzer flags any use from a protocol package, so the wire
// codec can exist without weakening the copy-store-send model.

// Wire returns the node-portable wire identity of r (0 for ⊥). Transport
// bookkeeping only; protocol code must not call it.
func Wire(r Ref) uint32 { return uint32(r.id) }

// FromWire reconstructs the reference with the given wire identity (inverse
// of Wire; 0 yields ⊥). Transport bookkeeping only.
func FromWire(id uint32) Ref { return Ref{id: int32(id)} }
