package ref

import (
	"testing"
	"testing/quick"
)

func TestNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil must report IsNil")
	}
	if Nil.String() != "⊥" {
		t.Fatalf("Nil.String() = %q", Nil.String())
	}
	s := NewSpace()
	if s.New().IsNil() {
		t.Fatal("minted reference must not be nil")
	}
}

func TestSpaceMintsDistinct(t *testing.T) {
	s := NewSpace()
	seen := NewSet()
	for i := 0; i < 1000; i++ {
		r := s.New()
		if seen.Has(r) {
			t.Fatalf("duplicate reference %v at mint %d", r, i)
		}
		seen.Add(r)
	}
	if s.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count())
	}
}

func TestNewN(t *testing.T) {
	s := NewSpace()
	refs := s.NewN(5)
	if len(refs) != 5 {
		t.Fatalf("NewN(5) returned %d refs", len(refs))
	}
	for i, a := range refs {
		for j, b := range refs {
			if i != j && a == b {
				t.Fatalf("refs %d and %d equal", i, j)
			}
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	s := NewSpace()
	for i := 0; i < 100; i++ {
		r := s.New()
		if Index(r) != i {
			t.Fatalf("Index(%v) = %d, want %d", r, Index(r), i)
		}
		if ByIndex(i) != r {
			t.Fatalf("ByIndex(%d) = %v, want %v", i, ByIndex(i), r)
		}
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	s := NewSpace()
	refs := s.NewN(50)
	for i := range refs {
		for j := range refs {
			switch {
			case i < j && !Less(refs[i], refs[j]):
				t.Fatalf("expected %v < %v", refs[i], refs[j])
			case i == j && Less(refs[i], refs[j]):
				t.Fatalf("ref not irreflexive: %v", refs[i])
			case i > j && Less(refs[i], refs[j]):
				t.Fatalf("order inverted for %v,%v", refs[i], refs[j])
			}
		}
	}
}

func TestSortDeterministic(t *testing.T) {
	s := NewSpace()
	refs := s.NewN(20)
	shuffled := []Ref{refs[7], refs[3], refs[19], refs[0], refs[11]}
	Sort(shuffled)
	want := []Ref{refs[0], refs[3], refs[7], refs[11], refs[19]}
	for i := range want {
		if shuffled[i] != want[i] {
			t.Fatalf("Sort order wrong at %d: got %v want %v", i, shuffled[i], want[i])
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSpace()
	a, b, c := s.New(), s.New(), s.New()
	set := NewSet(a, b)
	if !set.Has(a) || !set.Has(b) || set.Has(c) {
		t.Fatal("membership wrong")
	}
	set.Add(c)
	set.Remove(a)
	if set.Has(a) || !set.Has(c) || set.Len() != 2 {
		t.Fatal("add/remove wrong")
	}
}

func TestSetIgnoresNil(t *testing.T) {
	set := NewSet()
	set.Add(Nil)
	if set.Len() != 0 {
		t.Fatal("⊥ must not be storable in a Set")
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSpace()
	a, b := s.New(), s.New()
	set := NewSet(a)
	cl := set.Clone()
	cl.Add(b)
	if set.Has(b) {
		t.Fatal("Clone must be independent")
	}
	if !cl.Has(a) {
		t.Fatal("Clone must contain original members")
	}
}

func TestSetEqual(t *testing.T) {
	s := NewSpace()
	a, b, c := s.New(), s.New(), s.New()
	if !NewSet(a, b).Equal(NewSet(b, a)) {
		t.Fatal("order must not matter")
	}
	if NewSet(a, b).Equal(NewSet(a, c)) {
		t.Fatal("different sets reported equal")
	}
	if NewSet(a, b).Equal(NewSet(a)) {
		t.Fatal("different sizes reported equal")
	}
}

func TestSetSortedMatchesMembership(t *testing.T) {
	s := NewSpace()
	refs := s.NewN(30)
	set := NewSet(refs[3], refs[9], refs[1])
	got := set.Sorted()
	want := []Ref{refs[1], refs[3], refs[9]}
	if len(got) != len(want) {
		t.Fatalf("Sorted length %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestQuickIndexInverse(t *testing.T) {
	f := func(n uint16) bool {
		i := int(n)
		return Index(ByIndex(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
