package ref

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestProtocolPackagesRespectOpacity is the compile-style counterpart of
// the fdplint refopacity analyzer: it parses the protocol packages' real
// sources and asserts none of them touches the simulator-only surface of
// this package — ordering (Less), integer identities (Index, ByIndex),
// reference minting (Space, NewSpace) or Ref literal construction. The
// check is syntactic (`ref.<denied>` selectors on the package import), so
// it holds even when the lint binary is not in the loop; fdplint adds the
// type-resolved version plus Ref.String detection on top.
func TestProtocolPackagesRespectOpacity(t *testing.T) {
	protocolDirs := []string{
		"../..",         // package fdp
		"../framework",  // wrapper framework
		"../primitives", // overlay primitives
		"../overlay",    // overlay protocols
	}
	denied := map[string]bool{
		"Index": true, "ByIndex": true, "Less": true,
		"NewSpace": true, "Space": true, "Ref": false, // Ref selector is the type, allowed; composite lits checked separately
	}

	fset := token.NewFileSet()
	for _, dir := range protocolDirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			checkFileOpacity(t, fset, f, denied)
		}
	}
}

func checkFileOpacity(t *testing.T, fset *token.FileSet, f *ast.File, denied map[string]bool) {
	t.Helper()
	// Only files importing this package can name its surface.
	refAlias := ""
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "fdp/internal/ref" {
			refAlias = "ref"
			if imp.Name != nil {
				refAlias = imp.Name.Name
			}
		}
	}
	if refAlias == "" {
		return
	}

	// Honour the shared suppression facility the same way fdplint does:
	// a reasoned //fdplint:ignore refopacity covers its own and the next line.
	ignored := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			fields := strings.Fields(strings.TrimPrefix(c.Text, "//fdplint:ignore"))
			if !strings.HasPrefix(c.Text, "//fdplint:ignore") || len(fields) < 2 || fields[0] != "refopacity" {
				continue
			}
			line := fset.Position(c.Pos()).Line
			ignored[line] = true
			ignored[line+1] = true
		}
	}

	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		if ignored[p.Line] {
			return
		}
		t.Errorf("%s: protocol code uses %s; references are opaque (copy, store, send, ==-compare only)", p, what)
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			x, ok := n.X.(*ast.Ident)
			if !ok || x.Name != refAlias {
				return true
			}
			if denied[n.Sel.Name] {
				report(n.Pos(), refAlias+"."+n.Sel.Name)
			}
		case *ast.CompositeLit:
			// ref.Ref{…} mints a reference outside the Space authority.
			sel, ok := n.Type.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if x, ok := sel.X.(*ast.Ident); ok && x.Name == refAlias && sel.Sel.Name == "Ref" {
				report(n.Pos(), refAlias+".Ref{} literal construction")
			}
		}
		return true
	})
}
