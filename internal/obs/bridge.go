package obs

import (
	"time"

	"fdp/internal/parallel"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Canonical FDP series names. Both engines write the same vocabulary,
// distinguished by the engine label, so dashboards and tests query one
// schema regardless of which engine produced a run.
const (
	// MetricEvents is the per-kind event counter family.
	MetricEvents = "fdp_events_total"
	// MetricMessageAge is the message-age-at-delivery histogram. Sequential
	// engine: age in steps. Concurrent engine has no step-stamped enqueue,
	// so it does not write this series.
	MetricMessageAge = "fdp_message_age_steps"
	// MetricMailboxDepth is the channel/mailbox depth histogram, observed
	// at every send (depth after the append).
	MetricMailboxDepth = "fdp_mailbox_depth"
	// MetricTimeToExitSteps is the sequential time-to-exit histogram: the
	// step at which each leaver committed exit (leavers exist from step 0).
	MetricTimeToExitSteps = "fdp_time_to_exit_steps"
	// MetricTimeToExitSeconds is the concurrent time-to-exit histogram:
	// wall-clock seconds from Runtime.Start to each committed exit.
	MetricTimeToExitSeconds = "fdp_time_to_exit_seconds"
	// MetricOracleCalls counts oracle evaluations (via CountOracle).
	MetricOracleCalls = "fdp_oracle_calls_total"
	// MetricExitDenied counts exit requests rejected by the runtime's
	// revalidation under the snapshot lock.
	MetricExitDenied = "fdp_exit_denied_total"
	// MetricCausalIDs is the high-water mark of assigned causal identities
	// (events and messages) — the causal-progress gauge of DESIGN.md §11.
	// Joinable against journal records: a journal's largest cid is this
	// gauge's final value.
	MetricCausalIDs = "fdp_causal_ids"
)

func eventSeries(engine string, k sim.EventKind) string {
	return MetricEvents + `{engine="` + engine + `",kind="` + k.String() + `"}`
}

// kindCounters pre-registers one counter per event kind so the hook hot
// path is a pure array index + atomic add.
func kindCounters(reg *Registry, engine string) *[sim.NumEventKinds]*Counter {
	var out [sim.NumEventKinds]*Counter
	for k := 0; k < sim.NumEventKinds; k++ {
		out[k] = reg.Counter(eventSeries(engine, sim.EventKind(k)),
			"trace events per kind and engine")
	}
	return &out
}

// InstrumentWorld attaches a metrics hook to the sequential world via the
// event-hook fan-out (existing consumers such as the viz recorder keep
// receiving events). The hook is zero-alloc: every series it touches is
// registered here, before the run.
func InstrumentWorld(w *sim.World, reg *Registry) {
	kinds := kindCounters(reg, "sim")
	msgAge := reg.Histogram(MetricMessageAge,
		"steps a message spent enqueued before delivery",
		ExpBuckets(1, 2, 16))
	depth := reg.Histogram(MetricMailboxDepth,
		"channel depth after each send",
		ExpBuckets(1, 2, 12))
	timeToExit := reg.Histogram(MetricTimeToExitSteps,
		"step at which each leaver committed exit",
		ExpBuckets(1, 2, 24))
	// Updated from the hook rather than a GaugeFunc over World.CausalIDs:
	// the world is single-threaded and must not be read by a concurrent
	// Collect, while a gauge is an atomic cell. Event CIDs are the latest
	// allocation at emission time, so the gauge tracks the high-water mark.
	causal := reg.Gauge(MetricCausalIDs, "high-water mark of assigned causal identities")
	w.AddEventHook(func(e sim.Event) {
		if int(e.Kind) < sim.NumEventKinds {
			kinds[e.Kind].Inc()
		}
		causal.Set(int64(e.CID))
		switch e.Kind {
		case sim.EvDeliver:
			msgAge.Observe(float64(e.Age))
		case sim.EvSend:
			depth.Observe(float64(e.Depth))
		case sim.EvExit:
			timeToExit.Observe(float64(e.Step))
		}
	})
}

// InstrumentRuntime wires the concurrent runtime into reg: an event sink
// feeding the same per-kind counters and depth histogram the sequential
// bridge writes (engine="runtime"), a wall-clock time-to-exit histogram,
// and collector gauges over the runtime's always-on atomic counters. Call
// before Runtime.Start. The sink runs on the emitting goroutines and
// touches only atomics.
func InstrumentRuntime(rt *parallel.Runtime, reg *Registry) {
	kinds := kindCounters(reg, "runtime")
	depth := reg.Histogram(MetricMailboxDepth,
		"channel depth after each send",
		ExpBuckets(1, 2, 12))
	timeToExit := reg.Histogram(MetricTimeToExitSeconds,
		"wall-clock seconds from Start to each committed exit",
		ExitSecondsBuckets())
	rt.SetEventSink(func(e sim.Event) {
		if int(e.Kind) < sim.NumEventKinds {
			kinds[e.Kind].Inc()
		}
		switch e.Kind {
		case sim.EvSend:
			depth.Observe(float64(e.Depth))
		case sim.EvExit:
			timeToExit.Observe(time.Since(rt.StartTime()).Seconds())
		}
	})
	reg.GaugeFunc("fdp_runtime_actions_total", "executed actions (timeouts + deliveries)",
		func() float64 { return float64(rt.Events()) })
	reg.GaugeFunc("fdp_runtime_sent_total", "messages sent (including drops)",
		func() float64 { return float64(rt.Sent()) })
	reg.GaugeFunc("fdp_runtime_dropped_total", "sends that vanished (gone target)",
		func() float64 { return float64(rt.Dropped()) })
	reg.GaugeFunc("fdp_runtime_gone", "processes that committed exit",
		func() float64 { return float64(rt.Gone()) })
	reg.GaugeFunc(MetricExitDenied, "exit requests rejected by revalidation",
		func() float64 { return float64(rt.ExitDenied()) })
	// The runtime's causal counter is an atomic, so a collector-time read is
	// race-free (unlike the sequential world, which needs the hook form).
	reg.GaugeFunc(MetricCausalIDs, "high-water mark of assigned causal identities",
		func() float64 { return float64(rt.CausalIDs()) })
}

// countedOracle wraps an oracle with an atomic call counter. The counter
// update is receiver state only, so the wrapper stays a pure guard
// (guardpurity-clean) and is safe under the runtime's concurrent
// evaluation (serialized by oracleMu, but the counter does not rely on
// that).
type countedOracle struct {
	inner sim.Oracle
	calls *Counter
}

func (o countedOracle) Name() string { return o.inner.Name() }

func (o countedOracle) Evaluate(w *sim.World, u ref.Ref) bool {
	o.calls.Inc()
	return o.inner.Evaluate(w, u)
}

// degreeJudge mirrors the concurrent runtime's degree-oracle contract: an
// oracle whose verdict is a pure function of the SINGLE-style relevant
// degree. The counting wrapper must preserve it — the runtime discovers
// the capability by type assertion, and losing it would silently push a
// benchmark run off the incremental-degree fast path onto the per-epoch
// world clone.
type degreeJudge interface {
	JudgeDegree(deg int) bool
}

type countedDegreeOracle struct {
	countedOracle
	jd degreeJudge
}

func (o countedDegreeOracle) JudgeDegree(deg int) bool {
	o.calls.Inc()
	return o.jd.JudgeDegree(deg)
}

// CountOracle wraps orc so every evaluation increments the
// MetricOracleCalls counter of reg — the oracle-call-count series for both
// engines (the sequential world evaluates on OracleSays and legitimacy
// checks; the runtime from the coordinator, epoch validation and
// validateExit). Degree-pure oracles keep their JudgeDegree method through
// the wrapper. A nil orc is returned unchanged.
func CountOracle(orc sim.Oracle, reg *Registry) sim.Oracle {
	if orc == nil {
		return nil
	}
	c := countedOracle{inner: orc, calls: reg.Counter(MetricOracleCalls, "oracle evaluations")}
	if jd, ok := orc.(degreeJudge); ok {
		return countedDegreeOracle{countedOracle: c, jd: jd}
	}
	return c
}
