package obs

import (
	"strings"
	"testing"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

func leavers3() []ref.Ref {
	return []ref.Ref{ref.ByIndex(0), ref.ByIndex(1), ref.ByIndex(2)}
}

func ev(kind sim.EventKind, proc ref.Ref) sim.Event {
	return sim.Event{Kind: kind, Proc: proc}
}

// TestProgressClassification walks one Progress through every stall kind:
// the classification switch of Check is the contract DESIGN.md §16 states,
// so each branch gets a window constructed to hit exactly it.
func TestProgressClassification(t *testing.T) {
	ls := leavers3()
	p := NewProgress(nil, "", ls)

	// Window 1: sends and delivers flowed, the oracle denied throughout,
	// nobody settled — livelock.
	p.NoteEvent(ev(sim.EvSend, ls[0]))
	p.NoteEvent(ev(sim.EvDeliver, ls[1]))
	p.NoteOracle(ls[0], false)
	p.NoteOracle(ls[0], false)
	v, stalled := p.Check(100, 5)
	if !stalled || v.Kind != StallLivelock {
		t.Fatalf("flow+denials window classified %v, want livelock", v.Kind)
	}
	if v.WindowDenials != 2 || v.MaxDenialStreak != 2 {
		t.Fatalf("denial accounting off: %+v", v)
	}
	if v.WindowHops != 1 {
		t.Fatalf("leaver send did not count as a hop: %+v", v)
	}

	// Window 2: timeouts fire but no deliveries while messages are queued —
	// starvation (something is not draining).
	p.NoteEvent(ev(sim.EvTimeout, ls[0]))
	v, stalled = p.Check(200, 7)
	if !stalled || v.Kind != StallStarvation {
		t.Fatalf("queued+undelivered window classified %v, want starvation", v.Kind)
	}

	// Window 3: nothing at all happened and the queue is empty — quiescent.
	v, stalled = p.Check(300, 0)
	if !stalled || v.Kind != StallQuiescent {
		t.Fatalf("dead window classified %v, want quiescent", v.Kind)
	}
	if v.OldestIdleWindows < 2 {
		t.Fatalf("idle leaver not aging across windows: %+v", v)
	}

	// Window 4: a grant is progress even without a settle yet.
	p.NoteOracle(ls[0], true)
	v, stalled = p.Check(400, 3)
	if stalled || v.Kind != StallNone {
		t.Fatalf("granted window classified %v, want none", v.Kind)
	}
	if v.MaxDenialStreak != 0 {
		t.Fatalf("grant did not reset the denial streak: %+v", v)
	}

	// Window 5: settles drain the leaver set; once it is empty no window
	// can stall regardless of activity.
	for _, l := range ls {
		p.NoteEvent(ev(sim.EvExit, l))
	}
	if p.Remaining() != 0 {
		t.Fatalf("remaining = %d after all exits", p.Remaining())
	}
	if v, stalled = p.Check(500, 0); stalled || v.LeaversRemaining != 0 {
		t.Fatalf("empty leaver set still stalls: %+v", v)
	}
}

// TestProgressSleepWake pins the FSP settle semantics: hibernation settles a
// leaver, a wake-up unsettles it again (its departure is back in flight).
func TestProgressSleepWake(t *testing.T) {
	ls := leavers3()
	reg := NewRegistry()
	p := NewProgress(reg, `engine="test"`, ls)

	p.NoteEvent(ev(sim.EvSleep, ls[0]))
	if p.Remaining() != 2 {
		t.Fatalf("remaining = %d after sleep, want 2", p.Remaining())
	}
	// Double settle must not double-count.
	p.NoteEvent(ev(sim.EvSleep, ls[0]))
	if g := reg.Gauge(MetricProgressLeavers+`{engine="test"}`, "").Value(); g != 2 {
		t.Fatalf("remaining gauge = %d, want 2", g)
	}
	p.NoteEvent(ev(sim.EvWake, ls[0]))
	if p.Remaining() != 3 {
		t.Fatalf("remaining = %d after wake, want 3", p.Remaining())
	}
	// A settled leaver's sends are not hops; an unsettled one's are.
	p.NoteEvent(ev(sim.EvSleep, ls[1]))
	p.NoteEvent(ev(sim.EvSend, ls[1]))
	p.NoteEvent(ev(sim.EvSend, ls[0]))
	if v, _ := p.Check(1, 0); v.WindowHops != 1 {
		t.Fatalf("hops = %d, want 1 (settled leaver's send counted?)", v.WindowHops)
	}
}

// TestProgressNonLeaver: events and verdicts for processes outside the
// leaver set count toward window activity but never toward slots.
func TestProgressNonLeaver(t *testing.T) {
	p := NewProgress(nil, "", leavers3())
	stayer := ref.ByIndex(9)
	p.NoteEvent(ev(sim.EvSend, stayer))
	p.NoteEvent(ev(sim.EvExit, stayer)) // not a leaver: no settle
	p.NoteOracle(stayer, false)
	v, stalled := p.Check(1, 1)
	if v.WindowSends != 1 || v.WindowHops != 0 {
		t.Fatalf("stayer send misclassified as hop: %+v", v)
	}
	if v.LeaversRemaining != 3 || !stalled {
		t.Fatalf("stayer exit settled a leaver slot: %+v", v)
	}
	if v.WindowDenials != 1 || v.MaxDenialStreak != 0 {
		t.Fatalf("stayer denial grew a leaver streak: %+v", v)
	}
}

// TestProgressExposition: the registry-backed form emits every liveness
// series with the instance labels merged in, and a stall verdict moves the
// state gauge and the per-kind verdict counter.
func TestProgressExposition(t *testing.T) {
	ls := leavers3()
	reg := NewRegistry()
	p := NewProgress(reg, `node="2"`, ls)

	p.NoteEvent(ev(sim.EvSend, ls[0]))
	p.NoteOracle(ls[0], false)
	p.NoteOracle(ls[1], true)
	if _, stalled := p.Check(10, 0); stalled {
		t.Fatal("granted window stalled")
	}
	p.NoteEvent(ev(sim.EvSend, ls[0]))
	p.NoteEvent(ev(sim.EvDeliver, ls[1]))
	p.NoteOracle(ls[0], false)
	if v, stalled := p.Check(20, 1); !stalled || v.Kind != StallLivelock {
		t.Fatalf("want livelock, got %+v", v)
	}

	out := reg.String()
	for _, want := range []string{
		`fdp_progress_leavers_remaining{node="2"} 3`,
		`fdp_progress_grants_total{node="2"} 1`,
		`fdp_progress_denials_total{node="2"} 2`,
		`fdp_progress_forward_hops_total{node="2"} 2`,
		`fdp_progress_denial_streak_max{node="2"} 2`,
		`fdp_stall_state{node="2"} 1`,
		`fdp_stall_verdicts_total{node="2",kind="livelock"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestProgressNoteAllocs pins the hot path at zero allocations — Progress
// hooks ride inside every engine step, so a single allocation per event
// would dominate a 100k-process churn.
func TestProgressNoteAllocs(t *testing.T) {
	ls := leavers3()
	reg := NewRegistry()
	p := NewProgress(reg, `engine="alloc"`, ls)
	send := ev(sim.EvSend, ls[0])
	deliver := ev(sim.EvDeliver, ls[1])
	if n := testing.AllocsPerRun(1000, func() {
		p.NoteEvent(send)
		p.NoteEvent(deliver)
	}); n != 0 {
		t.Fatalf("NoteEvent allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		p.NoteOracle(ls[0], false)
		p.NoteOracle(ls[1], true)
	}); n != 0 {
		t.Fatalf("NoteOracle allocates %v/op", n)
	}
}

// TestStepWatchdogCadence: ticks between window boundaries must not invoke
// the pending callback (it may allocate — Stats() copies a map).
func TestStepWatchdogCadence(t *testing.T) {
	p := NewProgress(nil, "", leavers3())
	wd := NewStepWatchdog(p, 100)
	calls := 0
	pending := func() int { calls++; return 0 }
	for s := 1; s <= 250; s++ {
		wd.Tick(s, pending)
	}
	if calls != 2 {
		t.Fatalf("pending queried %d times over 250 steps at window 100, want 2", calls)
	}
}
