// Package obs is the observability spine shared by both execution engines:
// a concurrency-safe registry of counters, gauges and fixed-bucket
// histograms, a Prometheus-style text exposition of everything registered,
// and bridges that feed the registry from the sequential simulator's event
// stream (InstrumentWorld) and from the concurrent runtime's counters and
// event sink (InstrumentRuntime).
//
// Design constraints, in order:
//
//   - The hot path is lock-free and zero-alloc. Counter.Inc, Gauge.Set and
//     Histogram.Observe touch only atomics on pre-allocated state; the
//     registry mutex is taken at registration time only, never while a
//     metric is updated. The obslock analyzer (DESIGN.md §9) statically
//     enforces that no method of this package acquires a lock while
//     holding another, and TestCounterIncAllocs pins 0 allocs/op.
//   - Both engines share one vocabulary. The sequential simulator updates
//     metrics from its single-threaded event hook; the concurrent runtime
//     updates the same metric types from many goroutines at once. Every
//     metric is therefore safe for concurrent use — there is no
//     "sequential-only" variant to misuse.
//   - Exposition is deterministic: series render in sorted name order, so
//     scrapes diff cleanly and tests can assert on substrings.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is >= the value, plus an implicit +Inf
// bucket. Bounds are fixed at registration, so Observe allocates nothing.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the chosen bucket. The lowest
// bucket interpolates from 0 and the +Inf bucket reports the last finite
// bound, so the estimate is bounded by the configured buckets.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := float64(rank-cum) / float64(c)
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor — the shape used for step/latency series whose range spans orders
// of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// ExitSecondsBuckets is the wall-clock time-to-exit schedule: coarse
// geometric bounds below half a second, a fine ~8%-spaced log series
// through the 0.5s–40s band, then a coarse tail. The committed n=100k
// baseline puts p50 at 6.7s and p99 at 7.6s — a plain ExpBuckets(0.0001,
// 4, 12) schedule collapses that whole band into one (6.55, 26.2] bucket,
// so quantiles at 100k scale were pure interpolation artifacts. The fine
// band resolves ratios down to 1.08x where the mass actually lands.
func ExitSecondsBuckets() []float64 {
	out := ExpBuckets(0.0001, 4, 7)                 // 100µs … 0.41s
	out = append(out, ExpBuckets(0.5, 1.08, 57)...) // 0.5s … ~37s
	return append(out, ExpBuckets(60, 4, 4)...)     // 60s … 3840s
}

// LinearBuckets returns n upper bounds start, start+width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// --- registry -----------------------------------------------------------

// metric is anything the registry can expose.
type metric interface {
	expose(w io.Writer, name string)
	kind() string
}

func (c *Counter) kind() string { return "counter" }
func (c *Counter) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}

func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, g.Value())
}

func (h *Histogram) kind() string { return "histogram" }
func (h *Histogram) expose(w io.Writer, name string) {
	base, labels := splitName(name)
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatBound(h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLabels(labels, `le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", base, labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count())
}

// gaugeFunc is a collector gauge: its value is computed at scrape time
// (used to expose live engine counters such as Runtime.Events without
// copying them on every update).
type gaugeFunc struct{ fn func() float64 }

func (g gaugeFunc) kind() string { return "gauge" }
func (g gaugeFunc) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %g\n", name, g.fn())
}

// Registry is a named collection of metrics. Registration (the Counter /
// Gauge / Histogram / GaugeFunc accessors) takes the registry mutex;
// updating a registered metric never does.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
	help    map[string]string // base name -> HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric), help: make(map[string]string)}
}

// Counter returns the counter registered under name, creating it if
// needed. The name may carry a Prometheus label suffix, e.g.
// `fdp_events_total{kind="send"}`; series sharing a base name share one
// HELP/TYPE header. Panics if name is registered as a different kind.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.lookupOrCreate(name, help, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %s registered as %s, not counter", name, m.kind()))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.lookupOrCreate(name, help, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %s registered as %s, not gauge", name, m.kind()))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed (bounds are ignored when the
// histogram already exists).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.lookupOrCreate(name, help, func() metric { return newHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %s registered as %s, not histogram", name, m.kind()))
	}
	return h
}

// GaugeFunc registers a collector gauge whose value is fn() at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.lookupOrCreate(name, help, func() metric { return gaugeFunc{fn: fn} })
}

func (r *Registry) lookupOrCreate(name, help string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	base, _ := splitName(name)
	if _, ok := r.help[base]; !ok && help != "" {
		r.help[base] = help
	}
	return m
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, series sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	snapshot := make(map[string]metric, len(r.metrics))
	for name, m := range r.metrics {
		snapshot[name] = m
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Strings(names)
	headered := make(map[string]bool)
	for _, name := range names {
		m := snapshot[name]
		base, _ := splitName(name)
		if !headered[base] {
			headered[base] = true
			if h := help[base]; h != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", base, h)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", base, m.kind())
		}
		m.expose(w, name)
	}
}

// String renders the exposition text (for tests and file dumps).
func (r *Registry) String() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// splitName separates an optional {label} suffix from the base name.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// mergeLabels combines an existing {a="b"} suffix with one extra label.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatBound(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}
