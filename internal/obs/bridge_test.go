package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/parallel"
	"fdp/internal/sim"
)

func churnScenario(seed int64) *churn.Scenario {
	return churn.Build(churn.Config{
		N: 16, Topology: churn.TopoRandom, LeaveFraction: 0.5, Pattern: churn.LeaveRandom,
		Corrupt: churn.Corruption{FlipBeliefs: 0.3, RandomAnchors: 0.3, JunkMessages: 4},
		Variant: core.VariantFDP, Oracle: oracle.Single{}, Seed: seed,
	})
}

// TestInstrumentWorldServesDuringRun drives an FDP churn run with the
// world instrumented and scrapes the /metrics endpoint from inside the run
// (OnStep): the acceptance criterion that the exposition is non-empty
// DURING a run, not only after it.
func TestInstrumentWorldServesDuringRun(t *testing.T) {
	s := churnScenario(3)
	reg := NewRegistry()
	InstrumentWorld(s.World, reg)

	srv := httptest.NewServer(NewServeMux(reg))
	defer srv.Close()

	var midRun string
	res := sim.Run(s.World, sim.NewRandomScheduler(3, 0), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 200000, CheckSafety: true,
		OnStep: func(w *sim.World) {
			if midRun == "" && w.Steps() == 50 {
				resp, err := srv.Client().Get(srv.URL + "/metrics")
				if err != nil {
					t.Fatalf("GET /metrics: %v", err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				midRun = string(body)
			}
		},
	})
	if !res.Converged {
		t.Fatalf("churn run did not converge: %+v", res)
	}
	if !strings.Contains(midRun, `fdp_events_total{engine="sim",kind="send"}`) {
		t.Fatalf("mid-run scrape missing send counter:\n%s", midRun)
	}
	if !strings.Contains(midRun, "fdp_mailbox_depth_bucket") {
		t.Fatalf("mid-run scrape missing depth histogram:\n%s", midRun)
	}

	// Terminal state: every leaver exited, and the time-to-exit histogram
	// saw exactly one observation per exit.
	exits := reg.Counter(eventSeries("sim", sim.EvExit), "").Value()
	if exits == 0 || exits != uint64(res.Stats.Exits) {
		t.Fatalf("exit counter = %d, stats say %d", exits, res.Stats.Exits)
	}
	tte := reg.Histogram(MetricTimeToExitSteps, "", nil)
	if tte.Count() != exits {
		t.Fatalf("time-to-exit count = %d, want %d", tte.Count(), exits)
	}
	age := reg.Histogram(MetricMessageAge, "", nil)
	if age.Count() == 0 {
		t.Fatal("message-age histogram empty after a churn run")
	}
}

// TestInstrumentWorldFanOut pins that instrumenting a world does not
// displace an already-attached recorder (the hook fan-out contract).
func TestInstrumentWorldFanOut(t *testing.T) {
	s := churnScenario(5)
	rec := sim.NewRecorder(1 << 16)
	rec.Attach(s.World)
	reg := NewRegistry()
	InstrumentWorld(s.World, reg)

	res := sim.Run(s.World, sim.NewRandomScheduler(5, 0), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 200000,
	})
	if !res.Converged {
		t.Fatalf("run did not converge: %+v", res)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder saw no events after InstrumentWorld was added")
	}
	sends := reg.Counter(eventSeries("sim", sim.EvSend), "").Value()
	if sends == 0 {
		t.Fatal("registry saw no send events")
	}
	if got := rec.CountByKind()[sim.EvExit]; uint64(got) != reg.Counter(eventSeries("sim", sim.EvExit), "").Value() {
		t.Fatalf("recorder and registry disagree on exits: %d vs %d",
			got, reg.Counter(eventSeries("sim", sim.EvExit), "").Value())
	}
}

func TestInstrumentRuntime(t *testing.T) {
	s := churnScenario(7)
	leavers := len(s.LeavingNodes())
	rt := mirror(s.World, oracle.Single{})
	reg := NewRegistry()
	InstrumentRuntime(rt, reg)

	ok := rt.RunUntil(func(w *sim.World) bool { return w.Legitimate(sim.FDP) },
		time.Millisecond, 30*time.Second)
	if !ok {
		t.Fatal("runtime did not converge")
	}
	if rt.Gone() != uint64(leavers) {
		t.Fatalf("gone = %d, want %d leavers", rt.Gone(), leavers)
	}
	exits := reg.Counter(eventSeries("runtime", sim.EvExit), "").Value()
	if exits != uint64(leavers) {
		t.Fatalf("runtime exit counter = %d, want %d", exits, leavers)
	}
	tte := reg.Histogram(MetricTimeToExitSeconds, "", nil)
	if tte.Count() != uint64(leavers) {
		t.Fatalf("time-to-exit count = %d, want %d", tte.Count(), leavers)
	}
	if got := len(rt.ExitLatencies()); got != leavers {
		t.Fatalf("ExitLatencies len = %d, want %d", got, leavers)
	}
	out := reg.String()
	for _, want := range []string{
		`fdp_events_total{engine="runtime",kind="send"}`,
		"fdp_runtime_actions_total",
		"fdp_time_to_exit_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCountOracle(t *testing.T) {
	reg := NewRegistry()
	orc := CountOracle(oracle.Single{}, reg)
	if orc.Name() != (oracle.Single{}).Name() {
		t.Fatalf("wrapper changed oracle name to %q", orc.Name())
	}
	jd, ok := orc.(interface{ JudgeDegree(int) bool })
	if !ok {
		t.Fatal("wrapper dropped Single's JudgeDegree — runtime would lose the degree fast path")
	}
	if !jd.JudgeDegree(1) || jd.JudgeDegree(2) {
		t.Fatal("wrapped JudgeDegree no longer matches Single's verdict")
	}
	if _, bad := CountOracle(oracle.NIDEC{}, reg).(interface{ JudgeDegree(int) bool }); bad {
		t.Fatal("wrapper invented JudgeDegree for a stateful oracle")
	}
	s := churn.Build(churn.Config{
		N: 8, Topology: churn.TopoRing, LeaveFraction: 0.4, Pattern: churn.LeaveRandom,
		Variant: core.VariantFDP, Oracle: orc, Seed: 1,
	})
	res := sim.Run(s.World, sim.NewRandomScheduler(1, 0), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 200000,
	})
	if !res.Converged {
		t.Fatalf("run did not converge: %+v", res)
	}
	if reg.Counter(MetricOracleCalls, "").Value() == 0 {
		t.Fatal("oracle-call counter stayed zero")
	}
	if CountOracle(nil, reg) != nil {
		t.Fatal("CountOracle(nil) should stay nil")
	}
}

// mirror transplants a built world onto the concurrent runtime — the same
// shape as diffval.MirrorWorld, duplicated here to keep obs free of a
// diffval dependency in tests.
func mirror(w *sim.World, orc sim.Oracle) *parallel.Runtime {
	src := w.Clone()
	rt := parallel.NewRuntime(orc)
	for _, r := range src.Refs() {
		if src.LifeOf(r) == sim.Gone {
			continue
		}
		rt.AddProcess(r, src.ModeOf(r), src.ProtocolOf(r))
	}
	for _, r := range src.Refs() {
		if src.LifeOf(r) == sim.Gone {
			continue
		}
		if src.LifeOf(r) == sim.Asleep {
			rt.ForceAsleep(r)
		}
		for _, m := range src.ChannelSnapshot(r) {
			rt.Enqueue(r, m)
		}
	}
	return rt
}
