package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("g", "help g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Get-or-create returns the same instance.
	if reg.Counter("c_total", "") != c {
		t.Fatal("second Counter lookup returned a different instance")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("Gauge on a counter name did not panic")
		}
	}()
	reg.Gauge("m", "")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for v := 1; v <= 8; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 36 {
		t.Fatalf("sum = %v, want 36", h.Sum())
	}
	med := h.Quantile(0.5)
	if med < 1 || med > 4 {
		t.Fatalf("median estimate %v outside [1,4]", med)
	}
	hi := h.Quantile(0.99)
	if hi < 4 || hi > 8 {
		t.Fatalf("p99 estimate %v outside [4,8]", hi)
	}
	// Values beyond the last bound land in +Inf and report the last bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 1 {
		t.Fatalf("overflow quantile = %v, want last bound 1", got)
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramSumConcurrent(t *testing.T) {
	h := newHistogram(ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-workers*per) > 1e-9 {
		t.Fatalf("sum = %v, want %d", h.Sum(), workers*per)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`fdp_events_total{kind="send"}`, "events per kind").Add(3)
	reg.Counter(`fdp_events_total{kind="exit"}`, "events per kind").Add(1)
	reg.Gauge("fdp_gone", "gone processes").Set(2)
	reg.Histogram("fdp_age", "age", []float64{1, 2}).Observe(1.5)
	reg.GaugeFunc("fdp_live", "live value", func() float64 { return 4 })
	out := reg.String()

	for _, want := range []string{
		"# TYPE fdp_events_total counter",
		"# HELP fdp_events_total events per kind",
		`fdp_events_total{kind="exit"} 1`,
		`fdp_events_total{kind="send"} 3`,
		"# TYPE fdp_gone gauge",
		"fdp_gone 2",
		"# TYPE fdp_age histogram",
		`fdp_age_bucket{le="1"} 0`,
		`fdp_age_bucket{le="2"} 1`,
		`fdp_age_bucket{le="+Inf"} 1`,
		"fdp_age_sum 1.5",
		"fdp_age_count 1",
		"fdp_live 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, not per series.
	if strings.Count(out, "# TYPE fdp_events_total") != 1 {
		t.Fatalf("duplicated TYPE header:\n%s", out)
	}
	// Deterministic: series sorted by name.
	if strings.Index(out, `kind="exit"`) > strings.Index(out, `kind="send"`) {
		t.Fatalf("series not sorted:\n%s", out)
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Counter("shared_total", "").Inc()
				reg.Histogram("shared_hist", "", ExpBuckets(1, 2, 4)).Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared_total", "").Value(); got != 8*200 {
		t.Fatalf("shared counter = %d, want %d", got, 8*200)
	}
}

// TestHotPathAllocs is the zero-alloc guard of the acceptance criteria:
// counter increments, gauge stores and histogram observations on
// registered metrics must not allocate.
func TestHotPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hot_total", "")
	g := reg.Gauge("hot_gauge", "")
	h := reg.Histogram("hot_hist", "", ExpBuckets(1, 2, 16))
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3.5) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_hist", "", ExpBuckets(1, 2, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

// TestExitSecondsBucketsResolveChurnBand is the regression test for the
// time-to-exit schedule: the committed n=100k baseline lands p50 at 6.7s and
// p99 at 7.6s, and the old ExpBuckets(0.0001, 4, 12) schedule put both in
// the single (6.55, 26.2] bucket — every quantile in that band was an
// interpolation artifact. The widened schedule must (a) keep both values in
// finite, *distinct* buckets and (b) let a histogram fed a synthetic
// 100k-scale sample actually distinguish p50 from p99.
func TestExitSecondsBucketsResolveChurnBand(t *testing.T) {
	bs := ExitSecondsBuckets()
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %g <= %g", i, bs[i], bs[i-1])
		}
	}
	idx := func(v float64) int {
		for i, b := range bs {
			if v <= b {
				return i
			}
		}
		return len(bs) // +Inf
	}
	i50, i99 := idx(6.7), idx(7.6)
	if i50 >= len(bs) || i99 >= len(bs) {
		t.Fatalf("churn band overflows to +Inf: p50 bucket %d, p99 bucket %d of %d", i50, i99, len(bs))
	}
	if i50 == i99 {
		t.Fatalf("6.7s and 7.6s share bucket %d (le=%g) — p50/p99 indistinguishable again", i50, bs[i50])
	}

	// Synthetic 100k-scale sample: 98% of exits near 6.7s, a 2% tail near
	// 7.6s. The old schedule reported p50 == p99 here.
	h := newHistogram(bs)
	for i := 0; i < 9800; i++ {
		h.Observe(6.7)
	}
	for i := 0; i < 200; i++ {
		h.Observe(7.6)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if !(p50 < p99) {
		t.Fatalf("p50=%g !< p99=%g on a bimodal 6.7s/7.6s sample", p50, p99)
	}
	if p50 < 6.0 || p50 > 7.3 {
		t.Fatalf("p50=%g, want within the 6.7s mode's bucket neighborhood", p50)
	}
	if p99 < 7.0 || p99 > 8.3 {
		t.Fatalf("p99=%g, want within the 7.6s mode's bucket neighborhood", p99)
	}
}
