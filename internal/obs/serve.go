package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the registry in the Prometheus
// text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// NewServeMux returns a mux serving the registry under /metrics and the
// standard net/http/pprof profiles under /debug/pprof/ — the endpoint the
// -serve flag of cmd/fdpsim and cmd/fdpbench binds during a run.
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
