package obs

import (
	"fmt"
	"sync/atomic"
	"time"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Liveness observability (DESIGN.md §16). The FDP/FSP guarantees are
// liveness properties — Lemma 3 promises every leaver eventually settles —
// so a run that is *stuck* looks, from the outside, exactly like a run
// that is merely slow. Progress turns the event stream and the oracle's
// grant/denial stream into per-leaver progress accounting, and the
// watchdogs periodically classify a window with remaining leavers and no
// settles into one of three stall kinds:
//
//   - livelock: actions and messages keep flowing but the oracle grants
//     nothing — the protocol is spinning (the shape of four of the five
//     bugs the fuzzer found);
//   - starvation: messages are queued but none get delivered — a scheduler
//     or shard/queue is not draining;
//   - quiescent: nothing executes at all while leavers remain — with an
//     empty queue this is a wedged engine or a Lemma 2 violation in the
//     making (a leaver nothing will ever talk to again).
//
// Everything on the hot path (NoteEvent, NoteOracle) is lock-free and
// zero-alloc: per-leaver slots live behind a map that is read-only after
// New, and every update is an atomic on pre-allocated state —
// TestProgressNoteAllocs pins 0 allocs/op. Classification (Check) runs on
// one driver goroutine and is the only place window deltas are kept.

// Canonical liveness series names (suffixed with the instance labels the
// Progress was created with, e.g. engine="sim" or node="0").
const (
	// MetricProgressLeavers is the live count of unsettled leavers.
	MetricProgressLeavers = "fdp_progress_leavers_remaining"
	// MetricProgressGrants counts oracle grants observed at exit-guard
	// evaluation sites.
	MetricProgressGrants = "fdp_progress_grants_total"
	// MetricProgressDenials counts oracle denials at the same sites.
	MetricProgressDenials = "fdp_progress_denials_total"
	// MetricProgressHops counts forward progress hops: sends performed by
	// a still-unsettled leaver (delegations, introductions — the visible
	// work of a departure in flight).
	MetricProgressHops = "fdp_progress_forward_hops_total"
	// MetricProgressDenialStreak is the largest current run of consecutive
	// denials any single leaver has accumulated since its last grant.
	MetricProgressDenialStreak = "fdp_progress_denial_streak_max"
	// MetricStallState is the current stall classification (StallKind as
	// an integer; 0 = progressing).
	MetricStallState = "fdp_stall_state"
	// MetricStallVerdicts counts emitted stall verdicts per kind label.
	MetricStallVerdicts = "fdp_stall_verdicts_total"
)

// StallKind classifies why a run with remaining leavers stopped settling.
type StallKind int

const (
	// StallNone means the window saw progress (or no leavers remain).
	StallNone StallKind = iota
	// StallLivelock: actions and messages flowing, zero grants, zero
	// settles.
	StallLivelock
	// StallStarvation: messages are queued but none were delivered.
	StallStarvation
	// StallQuiescent: nothing executed at all while leavers remain.
	StallQuiescent
)

// String names the kind for labels and verdict dumps.
func (k StallKind) String() string {
	switch k {
	case StallNone:
		return "none"
	case StallLivelock:
		return "livelock"
	case StallStarvation:
		return "starvation"
	case StallQuiescent:
		return "quiescent"
	default:
		return "unknown"
	}
}

// StallVerdict is one watchdog classification: the kind plus the window
// evidence it was judged on.
type StallVerdict struct {
	Kind StallKind `json:"kind"`
	// LeaversRemaining is the unsettled-leaver count at the check.
	LeaversRemaining int `json:"leavers_remaining"`
	// Pending is the queued-message count supplied by the driver.
	Pending int `json:"pending"`
	// Window deltas: what happened between the previous check and this one.
	WindowTimeouts  uint64 `json:"window_timeouts"`
	WindowDelivers  uint64 `json:"window_delivers"`
	WindowSends     uint64 `json:"window_sends"`
	WindowGrants    uint64 `json:"window_grants"`
	WindowDenials   uint64 `json:"window_denials"`
	WindowHops      uint64 `json:"window_hops"`
	WindowSettles   uint64 `json:"window_settles"`
	MaxDenialStreak uint64 `json:"max_denial_streak"`
	// OldestIdleWindows is how many consecutive check windows the
	// least-recently-active unsettled leaver has gone without a forward
	// hop or a grant.
	OldestIdleWindows uint64 `json:"oldest_idle_windows"`
	// Step is the driver-supplied logical time of the check (sequential
	// steps, concurrent events, or node pump steps).
	Step uint64 `json:"step"`
}

// KindString is Kind.String, exported as a stable field for JSON dumps.
func (v StallVerdict) KindString() string { return v.Kind.String() }

func (v StallVerdict) String() string {
	return fmt.Sprintf("stall=%s leavers=%d pending=%d window[timeouts=%d delivers=%d sends=%d grants=%d denials=%d hops=%d settles=%d] streak=%d idle=%dw step=%d",
		v.Kind, v.LeaversRemaining, v.Pending,
		v.WindowTimeouts, v.WindowDelivers, v.WindowSends,
		v.WindowGrants, v.WindowDenials, v.WindowHops, v.WindowSettles,
		v.MaxDenialStreak, v.OldestIdleWindows, v.Step)
}

// leaverSlot is one leaver's progress epoch. All fields are atomics: the
// sequential engine updates them from its single-threaded hook, the
// concurrent runtime from many goroutines at once.
type leaverSlot struct {
	settled atomic.Bool
	// denialStreak counts consecutive denials since the last grant.
	denialStreak atomic.Uint64
	// lastActive is the check-window index of the leaver's most recent
	// forward hop or grant (progress epochs, in watchdog windows).
	lastActive atomic.Uint64
}

// Progress is the per-run liveness tracker: per-leaver progress slots plus
// windowed activity counters, feeding the fdp_progress_*/fdp_stall_*
// series of a Registry. NoteEvent and NoteOracle are the hot path —
// lock-free, zero-alloc, safe for concurrent use. Check (and the watchdogs
// wrapping it) must be driven from a single goroutine.
type Progress struct {
	slots map[ref.Ref]*leaverSlot // read-only after NewProgress
	list  []*leaverSlot           // deterministic iteration for Check

	// Cumulative activity, windowed by Check.
	timeouts atomic.Uint64
	delivers atomic.Uint64
	sends    atomic.Uint64
	grants   atomic.Uint64
	denials  atomic.Uint64
	hops     atomic.Uint64
	settles  atomic.Uint64
	// window is the current check-window index (slots stamp lastActive
	// with it).
	window atomic.Uint64

	// Checker-goroutine-only window baselines (not atomics: single caller).
	lastTimeouts, lastDelivers, lastSends uint64
	lastGrants, lastDenials, lastHops     uint64
	lastSettles                           uint64

	// Registry series (nil when constructed without a registry).
	remainingG *Gauge
	grantsC    *Counter
	denialsC   *Counter
	hopsC      *Counter
	streakG    *Gauge
	stateG     *Gauge
	verdicts   [4]*Counter
}

// NewProgress builds a tracker for the given leavers. labels is the
// instance label set merged into every series name (`engine="sim"`,
// `node="2"`, ...); empty means unlabeled. reg may be nil for a tracker
// that only classifies (no exposition).
func NewProgress(reg *Registry, labels string, leavers []ref.Ref) *Progress {
	p := &Progress{slots: make(map[ref.Ref]*leaverSlot, len(leavers))}
	for _, r := range leavers {
		if _, dup := p.slots[r]; dup {
			continue
		}
		s := &leaverSlot{}
		p.slots[r] = s
		p.list = append(p.list, s)
	}
	if reg != nil {
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		p.remainingG = reg.Gauge(MetricProgressLeavers+suffix, "unsettled leavers")
		p.grantsC = reg.Counter(MetricProgressGrants+suffix, "oracle grants at exit-guard sites")
		p.denialsC = reg.Counter(MetricProgressDenials+suffix, "oracle denials at exit-guard sites")
		p.hopsC = reg.Counter(MetricProgressHops+suffix, "sends by unsettled leavers (departure progress hops)")
		p.streakG = reg.Gauge(MetricProgressDenialStreak+suffix, "largest current consecutive-denial run of any leaver")
		p.stateG = reg.Gauge(MetricStallState+suffix, "current stall classification (0 none, 1 livelock, 2 starvation, 3 quiescent)")
		for k := StallLivelock; k <= StallQuiescent; k++ {
			p.verdicts[k] = reg.Counter(MetricStallVerdicts+"{"+mergedKind(labels, k)+"}",
				"stall verdicts emitted per kind")
		}
		p.remainingG.Set(int64(len(p.list)))
	}
	return p
}

func mergedKind(labels string, k StallKind) string {
	if labels == "" {
		return `kind="` + k.String() + `"`
	}
	return labels + `,kind="` + k.String() + `"`
}

// Remaining returns the current unsettled-leaver count.
func (p *Progress) Remaining() int {
	n := 0
	for _, s := range p.list {
		if !s.settled.Load() {
			n++
		}
	}
	return n
}

// NoteEvent is the engine event hook: install with World.AddEventHook or
// Runtime.SetEventSink (or call from a fan-out that also feeds a journal
// writer). Zero-alloc; safe for concurrent use.
func (p *Progress) NoteEvent(e sim.Event) {
	switch e.Kind {
	case sim.EvTimeout:
		p.timeouts.Add(1)
	case sim.EvDeliver:
		p.delivers.Add(1)
	case sim.EvSend:
		p.sends.Add(1)
		if s := p.slots[e.Proc]; s != nil && !s.settled.Load() {
			p.hops.Add(1)
			s.lastActive.Store(p.window.Load())
			if p.hopsC != nil {
				p.hopsC.Inc()
			}
		}
	case sim.EvExit:
		p.settle(e.Proc)
	case sim.EvSleep:
		// FSP: hibernation is the settle event.
		p.settle(e.Proc)
	case sim.EvWake:
		if s := p.slots[e.Proc]; s != nil && s.settled.CompareAndSwap(true, false) {
			if p.remainingG != nil {
				p.remainingG.Add(1)
			}
		}
	}
}

func (p *Progress) settle(r ref.Ref) {
	if s := p.slots[r]; s != nil && s.settled.CompareAndSwap(false, true) {
		p.settles.Add(1)
		if p.remainingG != nil {
			p.remainingG.Add(-1)
		}
	}
}

// NoteOracle is the oracle grant/denial hook: install with
// World.SetOracleHook (sequential), Runtime.SetOracleHook (concurrent) or
// call directly where grants are decided (the distributed oracle's round
// settlement). Zero-alloc; safe for concurrent use. Verdicts for
// non-leavers are counted but carry no streak.
func (p *Progress) NoteOracle(u ref.Ref, granted bool) {
	if granted {
		p.grants.Add(1)
		if p.grantsC != nil {
			p.grantsC.Inc()
		}
		if s := p.slots[u]; s != nil {
			s.denialStreak.Store(0)
			s.lastActive.Store(p.window.Load())
		}
		return
	}
	p.denials.Add(1)
	if p.denialsC != nil {
		p.denialsC.Inc()
	}
	if s := p.slots[u]; s != nil {
		s.denialStreak.Add(1)
	}
}

// Check classifies the window since the previous Check. pending is the
// driver's queued-message count (sequential: Stats().TotalInQueue;
// concurrent: sent - delivered - dropped; node: local queue + inbox).
// step is the driver's logical time, recorded in the verdict. Check must
// be called from one goroutine; stalled is true when the window made no
// settle progress while leavers remain.
func (p *Progress) Check(step uint64, pending int) (v StallVerdict, stalled bool) {
	timeouts := p.timeouts.Load()
	delivers := p.delivers.Load()
	sends := p.sends.Load()
	grants := p.grants.Load()
	denials := p.denials.Load()
	hops := p.hops.Load()
	settles := p.settles.Load()

	v = StallVerdict{
		Pending:        pending,
		Step:           step,
		WindowTimeouts: timeouts - p.lastTimeouts,
		WindowDelivers: delivers - p.lastDelivers,
		WindowSends:    sends - p.lastSends,
		WindowGrants:   grants - p.lastGrants,
		WindowDenials:  denials - p.lastDenials,
		WindowHops:     hops - p.lastHops,
		WindowSettles:  settles - p.lastSettles,
	}
	p.lastTimeouts, p.lastDelivers, p.lastSends = timeouts, delivers, sends
	p.lastGrants, p.lastDenials, p.lastHops = grants, denials, hops
	p.lastSettles = settles

	window := p.window.Add(1)
	var maxStreak, oldestIdle uint64
	for _, s := range p.list {
		if s.settled.Load() {
			continue
		}
		v.LeaversRemaining++
		if st := s.denialStreak.Load(); st > maxStreak {
			maxStreak = st
		}
		// window was just bumped, so an idle leaver's gap is at least 1.
		if idle := window - s.lastActive.Load(); idle > oldestIdle {
			oldestIdle = idle
		}
	}
	v.MaxDenialStreak = maxStreak
	v.OldestIdleWindows = oldestIdle
	if p.streakG != nil {
		p.streakG.Set(int64(maxStreak))
	}

	switch {
	case v.LeaversRemaining == 0,
		v.WindowSettles > 0,
		v.WindowGrants > 0:
		v.Kind = StallNone
	case v.WindowTimeouts == 0 && v.WindowDelivers == 0 && v.WindowSends == 0 && pending == 0:
		v.Kind = StallQuiescent
	case v.WindowDelivers == 0 && pending > 0:
		v.Kind = StallStarvation
	default:
		// Actions and messages flowing, zero grants, zero settles.
		v.Kind = StallLivelock
	}
	if p.stateG != nil {
		p.stateG.Set(int64(v.Kind))
	}
	if v.Kind != StallNone && p.verdicts[v.Kind] != nil {
		p.verdicts[v.Kind].Inc()
	}
	return v, v.Kind != StallNone
}

// StepWatchdog drives Progress.Check on a logical-step cadence — the
// deterministic form the sequential engine uses from RunOptions.OnStep.
// pending is queried only at window boundaries (Stats() copies a map, so
// per-step calls would violate the zero-alloc steady state).
type StepWatchdog struct {
	p     *Progress
	every int
	next  int
}

// NewStepWatchdog checks every `every` steps (minimum 1).
func NewStepWatchdog(p *Progress, every int) *StepWatchdog {
	if every < 1 {
		every = 1
	}
	return &StepWatchdog{p: p, every: every, next: every}
}

// Tick is called after every step; at window boundaries it runs one Check
// with pending(). Between boundaries it is two integer compares.
func (w *StepWatchdog) Tick(step int, pending func() int) (StallVerdict, bool) {
	if step < w.next {
		return StallVerdict{}, false
	}
	w.next = step + w.every
	return w.p.Check(uint64(step), pending())
}

// Watchdog drives Progress.Check on a wall-clock cadence for engines with
// no deterministic step stream (the concurrent runtime, the node pump).
// Tick is cheap between windows; call it from any single polling loop.
type Watchdog struct {
	p      *Progress
	window time.Duration
	next   time.Time
}

// NewWatchdog checks once per window (minimum 1ms).
func NewWatchdog(p *Progress, window time.Duration) *Watchdog {
	if window < time.Millisecond {
		window = time.Millisecond
	}
	return &Watchdog{p: p, window: window, next: time.Now().Add(window)}
}

// Tick runs one Check when the window has elapsed.
func (w *Watchdog) Tick(step uint64, pending func() int) (StallVerdict, bool) {
	now := time.Now()
	if now.Before(w.next) {
		return StallVerdict{}, false
	}
	w.next = now.Add(w.window)
	return w.p.Check(step, pending())
}
