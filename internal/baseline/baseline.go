// Package baseline reimplements (in simplified form) the departure protocol
// of Foreback, Koutsopoulos, Nesterenko, Scheideler and Strothmann, "On
// Stabilizing Departures in Overlay Networks" (SSS 2014) — the prior work
// the paper positions itself against. It is the comparator for experiment
// E9.
//
// Characteristics that the paper's universal protocol deliberately avoids:
//
//   - a fixed total order on the processes is required (keys);
//   - the protocol is tied to one topology: the sorted list. A leaving
//     process bridges its closest left and right neighbors to each other,
//     announces its departure so they drop its reference, and exits when
//     the NIDEC oracle confirms nobody references it and its channel is
//     empty;
//   - dropping a departing neighbor's reference is a plain deletion: it is
//     only safe because the bridge edge was installed first, i.e. the
//     protocol is NOT decomposable into the four primitives of Section 2.
//
//fdp:nondecomposable the SSS 2014 baseline deletes references outright (no Reversal); being outside 𝒫 is the point of the comparison
package baseline

import (
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Message labels of the baseline protocol.
const (
	// LabelLink introduces/delegates a reference, as in linearization.
	LabelLink = "blink"
	// LabelDepart announces the sender's departure; it carries the sender's
	// reference first and optionally a replacement neighbor to bridge to.
	LabelDepart = "bdepart"
)

// Proc is one process of the baseline protocol. It implements sim.Protocol
// directly (it cannot be wrapped by the Section 4 framework: its depart
// action is not primitive-decomposable).
type Proc struct {
	keys overlay.Keys
	n    ref.Set
	// announce throttles departure announcements to every other timeout:
	// a leaver's own depart messages carry its reference and count as
	// incoming implicit edges, so NIDEC can only observe a quiet state in
	// the timeouts where nothing was just sent.
	announce bool
}

var _ sim.Protocol = (*Proc)(nil)

// New returns a baseline process using the given key order.
func New(keys overlay.Keys) *Proc {
	return &Proc{keys: keys, n: ref.NewSet()}
}

// AddNeighbor seeds the initial neighborhood — scenario construction only.
func (p *Proc) AddNeighbor(v ref.Ref) { p.n.Add(v) }

// Refs implements sim.Protocol.
func (p *Proc) Refs() []ref.Ref { return p.n.Sorted() }

// Neighbors returns a copy of the stored neighborhood.
func (p *Proc) Neighbors() ref.Set { return p.n.Clone() }

func (p *Proc) sides(self ref.Ref) (left, right []ref.Ref) {
	for r := range p.n {
		if p.keys.Less(r, self) {
			left = append(left, r)
		} else if p.keys.Less(self, r) {
			right = append(right, r)
		}
	}
	p.keys.SortAsc(left)
	for i, j := 0, len(left)-1; i < j; i, j = i+1, j-1 {
		left[i], left[j] = left[j], left[i]
	}
	p.keys.SortAsc(right)
	return left, right
}

// Timeout implements sim.Protocol.
func (p *Proc) Timeout(ctx sim.Context) {
	u := ctx.Self()
	left, right := p.sides(u)
	if ctx.Mode() == sim.Staying {
		// Plain linearization, as in overlay.Linearize.
		if len(left) > 0 {
			for _, v := range left[1:] {
				p.n.Remove(v)
				ctx.Send(left[0], link(v))
			}
			ctx.Send(left[0], link(u))
		}
		if len(right) > 0 {
			for _, v := range right[1:] {
				p.n.Remove(v)
				ctx.Send(right[0], link(v))
			}
			ctx.Send(right[0], link(u))
		}
		return
	}
	// Leaving: exit as soon as NIDEC confirms no references to u remain
	// anywhere and u's channel is empty. This is checked before announcing,
	// because u's own depart/link messages carry u's reference and would
	// otherwise keep re-creating incoming implicit edges.
	if ctx.OracleSays() {
		ctx.Exit()
		return
	}
	// First squeeze extra references toward the list as usual.
	if len(left) > 1 {
		for _, v := range left[1:] {
			p.n.Remove(v)
			ctx.Send(left[0], link(v))
		}
	}
	if len(right) > 1 {
		for _, v := range right[1:] {
			p.n.Remove(v)
			ctx.Send(right[0], link(v))
		}
	}
	// Bridge the closest neighbors to each other and announce departure
	// (every other timeout; see the announce field).
	p.announce = !p.announce
	if !p.announce {
		return
	}
	switch {
	case len(left) > 0 && len(right) > 0:
		ctx.Send(left[0], depart(u, right[0]))
		ctx.Send(right[0], depart(u, left[0]))
	case len(left) > 0:
		ctx.Send(left[0], depart(u, ref.Nil))
	case len(right) > 0:
		ctx.Send(right[0], depart(u, ref.Nil))
	}
}

func link(v ref.Ref) sim.Message {
	return sim.NewMessage(LabelLink, sim.RefInfo{Ref: v, Mode: sim.Unknown})
}

func depart(u, replacement ref.Ref) sim.Message {
	refs := []sim.RefInfo{{Ref: u, Mode: sim.Leaving}}
	if !replacement.IsNil() {
		refs = append(refs, sim.RefInfo{Ref: replacement, Mode: sim.Unknown})
	}
	return sim.NewMessage(LabelDepart, refs...)
}

// Deliver implements sim.Protocol.
func (p *Proc) Deliver(ctx sim.Context, msg sim.Message) {
	u := ctx.Self()
	switch msg.Label {
	case LabelLink:
		if len(msg.Refs) != 1 || msg.Refs[0].Ref == u {
			return
		}
		p.n.Add(msg.Refs[0].Ref)
	case LabelDepart:
		if len(msg.Refs) == 0 || msg.Refs[0].Ref == u {
			return
		}
		leaver := msg.Refs[0].Ref
		// Plain deletion — safe only thanks to the bridge that arrives with
		// the announcement.
		p.n.Remove(leaver)
		if len(msg.Refs) > 1 && msg.Refs[1].Ref != u {
			p.n.Add(msg.Refs[1].Ref)
		}
	}
}
