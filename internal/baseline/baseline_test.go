package baseline

import (
	"math/rand"
	"testing"

	"fdp/internal/graph"
	"fdp/internal/oracle"
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// buildList installs baseline processes on a topology with the given set of
// leavers (by index).
func buildList(t *testing.T, n int, g *graph.Graph, nodes []ref.Ref, leaving map[int]bool) (*sim.World, overlay.Keys) {
	t.Helper()
	keys := make(overlay.Keys, n)
	for i, r := range nodes {
		keys[r] = i
	}
	w := sim.NewWorld(oracle.NIDEC{})
	procs := make(map[ref.Ref]*Proc, n)
	for i, r := range nodes {
		p := New(keys)
		procs[r] = p
		mode := sim.Staying
		if leaving[i] {
			mode = sim.Leaving
		}
		w.AddProcess(r, mode, p)
	}
	for _, e := range g.Edges() {
		procs[e.From].AddNeighbor(e.To)
	}
	w.SealInitialState()
	return w, keys
}

func runBaseline(w *sim.World, sched sim.Scheduler, maxSteps int) sim.RunResult {
	return sim.Run(w, sched, sim.RunOptions{
		Variant: sim.FDP, MaxSteps: maxSteps, CheckSafety: true,
	})
}

func TestBaselineDeparturesFromCleanList(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10
		nodes := ref.NewSpace().NewN(n)
		g := graph.Line(nodes)
		leaving := map[int]bool{}
		for len(leaving) < 4 {
			leaving[rng.Intn(n)] = true
		}
		w, _ := buildList(t, n, g, nodes, leaving)
		res := runBaseline(w, sim.NewRandomScheduler(seed, 256), 400000)
		if res.SafetyViolation != nil {
			t.Fatalf("seed %d: %v", seed, res.SafetyViolation)
		}
		if !res.Converged {
			t.Fatalf("seed %d: baseline did not converge in %d steps (%d left)",
				seed, res.Steps, w.LeavingRemaining())
		}
		if w.GoneCount() != len(leaving) {
			t.Fatalf("seed %d: gone=%d want %d", seed, w.GoneCount(), len(leaving))
		}
	}
}

func TestBaselineEndpointLeaves(t *testing.T) {
	nodes := ref.NewSpace().NewN(6)
	g := graph.Line(nodes)
	w, _ := buildList(t, 6, g, nodes, map[int]bool{0: true, 5: true})
	res := runBaseline(w, sim.NewRoundScheduler(), 200000)
	if res.SafetyViolation != nil || !res.Converged {
		t.Fatalf("endpoint departure failed: %+v", res)
	}
}

func TestBaselineAdjacentLeavers(t *testing.T) {
	nodes := ref.NewSpace().NewN(8)
	g := graph.Line(nodes)
	w, _ := buildList(t, 8, g, nodes, map[int]bool{3: true, 4: true})
	res := runBaseline(w, sim.NewRandomScheduler(2, 256), 400000)
	if res.SafetyViolation != nil || !res.Converged {
		t.Fatalf("adjacent leavers failed: %+v", res)
	}
}

func TestBaselineFromRandomGraph(t *testing.T) {
	// The baseline also linearizes from random graphs (its maintenance
	// protocol is the list protocol).
	rng := rand.New(rand.NewSource(7))
	nodes := ref.NewSpace().NewN(10)
	g := graph.RandomConnected(nodes, 5, rng)
	w, _ := buildList(t, 10, g, nodes, map[int]bool{2: true, 7: true})
	res := runBaseline(w, sim.NewRandomScheduler(7, 256), 600000)
	if res.SafetyViolation != nil || !res.Converged {
		t.Fatalf("random-graph start failed: %+v", res)
	}
}

func TestBaselineRequiresKeys(t *testing.T) {
	// Structural contrast with the universal protocol: the baseline stores
	// and uses the key order — demonstrate the sides() split.
	nodes := ref.NewSpace().NewN(5)
	keys := make(overlay.Keys, 5)
	for i, r := range nodes {
		keys[r] = i
	}
	p := New(keys)
	p.AddNeighbor(nodes[0])
	p.AddNeighbor(nodes[4])
	left, right := p.sides(nodes[2])
	if len(left) != 1 || left[0] != nodes[0] || len(right) != 1 || right[0] != nodes[4] {
		t.Fatal("key-order split broken")
	}
}

func TestBaselineDeliverIgnoresJunk(t *testing.T) {
	nodes := ref.NewSpace().NewN(3)
	keys := overlay.Keys{nodes[0]: 0, nodes[1]: 1, nodes[2]: 2}
	p := New(keys)
	ctx := &stubCtx{self: nodes[0]}
	p.Deliver(ctx, sim.NewMessage("junk", sim.RefInfo{Ref: nodes[1]}))
	p.Deliver(ctx, sim.NewMessage(LabelLink, sim.RefInfo{Ref: nodes[0]})) // self
	p.Deliver(ctx, sim.NewMessage(LabelLink))                             // malformed
	if p.n.Len() != 0 {
		t.Fatal("junk must be ignored")
	}
	p.Deliver(ctx, sim.NewMessage(LabelDepart,
		sim.RefInfo{Ref: nodes[1], Mode: sim.Leaving},
		sim.RefInfo{Ref: nodes[2], Mode: sim.Unknown}))
	if !p.n.Has(nodes[2]) {
		t.Fatal("depart replacement must be adopted")
	}
}

type stubCtx struct{ self ref.Ref }

func (c *stubCtx) Self() ref.Ref             { return c.self }
func (c *stubCtx) Mode() sim.Mode            { return sim.Staying }
func (c *stubCtx) Send(ref.Ref, sim.Message) {}
func (c *stubCtx) Exit()                     {}
func (c *stubCtx) Sleep()                    {}
func (c *stubCtx) OracleSays() bool          { return false }
