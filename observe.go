package fdp

import (
	"net/http"

	"fdp/internal/experiments"
	"fdp/internal/obs"
)

// Observer is the metric registry of the observability layer: a
// concurrency-safe set of counters, gauges and histograms shared by both
// engines. Set Config.Observe to one to have Simulate / SimulateParallel
// record the FDP series (per-kind event counts, message age at delivery,
// mailbox depth, time-to-exit per leaver, oracle calls) into it; render it
// with WritePrometheus/String or serve it live via ObserveMux.
type Observer = obs.Registry

// NewObserver returns an empty metric registry.
func NewObserver() *Observer { return obs.NewRegistry() }

// ObserveMux returns an http.Handler exposing reg as a Prometheus text
// endpoint at /metrics plus the net/http/pprof profiling endpoints at
// /debug/pprof/ — the handler behind the -serve flag of cmd/fdpsim and
// cmd/fdpbench.
func ObserveMux(reg *Observer) http.Handler { return obs.NewServeMux(reg) }

// BenchQuantiles, BenchPoint and BenchReport are the machine-readable
// benchmark payload types (the BENCH_<engine>.json artifact schema).
type (
	BenchQuantiles = experiments.BenchQuantiles
	BenchPoint     = experiments.BenchPoint
	BenchReport    = experiments.BenchReport
)

// Bench runs the FDP churn benchmark on both engines and returns one report
// per engine with exact per-size time-to-exit p50/p99 series. A non-nil reg
// additionally receives every run's live series, so a -serve endpoint shows
// the benchmark while it executes.
func Bench(quick bool, reg *Observer) []BenchReport {
	return BenchSizes(quick, nil, reg)
}

// BenchSizes is Bench with an explicit system-size series (strictly
// increasing; nil keeps the scale's default). Sizes above the sequential
// engine's O(n²) feasibility cap appear only in the concurrent engine's
// report; trial counts scale down automatically at large n.
func BenchSizes(quick bool, sizes []int, reg *Observer) []BenchReport {
	scale := experiments.Full()
	if quick {
		scale = experiments.Quick()
	}
	if len(sizes) > 0 {
		scale.Sizes = sizes
	}
	return experiments.Bench(scale, reg)
}
