package fdp_test

import (
	"fmt"

	"fdp"
)

// The basic use: run the departure protocol on a 12-node overlay where a
// third of the nodes want to leave.
func ExampleSimulate() {
	report, err := fdp.Simulate(fdp.Config{
		N:             12,
		Topology:      fdp.Ring,
		LeaveFraction: 1.0 / 3,
		Oracle:        fdp.OracleSingle,
		Seed:          1,
		CheckSafety:   true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", report.Converged)
	fmt.Println("exits:", report.Exits)
	fmt.Println("safety violated:", report.SafetyViolated)
	// Output:
	// converged: true
	// exits: 4
	// safety violated: false
}

// The Finite Sleep Problem variant needs no oracle at all.
func ExampleSimulate_fsp() {
	report, err := fdp.Simulate(fdp.Config{
		N:             10,
		Topology:      fdp.Line,
		LeaveFraction: 0.5,
		Variant:       fdp.FSP,
		Seed:          2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", report.Converged)
	fmt.Println("exits:", report.Exits) // FSP never uses exit
	// Output:
	// converged: true
	// exits: 0
}

// Section 4's framework keeps an overlay protocol working while leavers are
// excluded: here the sorted list re-forms over the staying nodes.
func ExampleSimulateOverlay() {
	report, err := fdp.SimulateOverlay(fdp.OverlayConfig{
		N:             12,
		Overlay:       fdp.Linearize,
		LeaveFraction: 0.25,
		Seed:          3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", report.Converged)
	fmt.Println("target reached:", report.TargetReached)
	// Output:
	// converged: true
	// target reached: true
}

// Theorem 1 made executable: morph a directed triangle into its reversal
// using only the four safe primitives, with connectivity verified after
// every single operation.
func ExampleMorph() {
	cw := fdp.EdgeList{{0, 1}, {1, 2}, {2, 0}}  // clockwise triangle
	ccw := fdp.EdgeList{{1, 0}, {2, 1}, {0, 2}} // counter-clockwise
	report, err := fdp.Morph(3, cw, ccw)
	if err != nil {
		panic(err)
	}
	fmt.Println("reached target:", report.TotalPrimitives() > 0)
	// Output:
	// reached target: true
}
